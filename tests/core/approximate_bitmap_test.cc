#include "core/approximate_bitmap.h"

#include <memory>
#include <random>

#include "gtest/gtest.h"

namespace abitmap {
namespace ab {
namespace {

using bitmap::BooleanMatrix;
using bitmap::Cell;
using bitmap::CellQuery;

AbParams SmallParams(uint64_t n_bits, int k) {
  AbParams p;
  p.n_bits = n_bits;
  p.k = k;
  p.alpha = 0;  // informational only
  return p;
}

TEST(ApproximateBitmapTest, InsertThenTestAlwaysHits) {
  ApproximateBitmap filter(SmallParams(1 << 10, 3),
                           hash::MakeIndependentFamily());
  for (uint64_t key = 0; key < 50; ++key) {
    filter.Insert(key, hash::CellRef{key, 0});
  }
  for (uint64_t key = 0; key < 50; ++key) {
    EXPECT_TRUE(filter.Test(key, hash::CellRef{key, 0})) << key;
  }
  EXPECT_EQ(filter.insertions(), 50u);
}

TEST(ApproximateBitmapTest, FillRatioGrowsWithInsertions) {
  ApproximateBitmap filter(SmallParams(1 << 12, 4),
                           hash::MakeIndependentFamily());
  EXPECT_EQ(filter.FillRatio(), 0.0);
  for (uint64_t key = 0; key < 200; ++key) {
    filter.Insert(key, hash::CellRef{});
  }
  double ratio = filter.FillRatio();
  EXPECT_GT(ratio, 0.05);
  EXPECT_LT(ratio, 0.25);  // 800 set operations into 4096 bits
}

TEST(ApproximateBitmapTest, ExpectedFalsePositiveRateTracksLoad) {
  ApproximateBitmap filter(SmallParams(1 << 12, 2),
                           hash::MakeIndependentFamily());
  EXPECT_EQ(filter.ExpectedFalsePositiveRate(), 0.0);
  for (uint64_t key = 0; key < 1000; ++key) {
    filter.Insert(key, hash::CellRef{});
  }
  double fp = filter.ExpectedFalsePositiveRate();
  EXPECT_GT(fp, 0.01);
  EXPECT_LT(fp, 0.5);
}

TEST(ApproximateBitmapTest, MeasuredFalsePositivesMatchTheory) {
  // Insert s = n/8 keys (alpha = 8) with k = 4 and measure the FP rate on
  // keys never inserted; it must be within noise of (1 - e^{-k/alpha})^k.
  const uint64_t n = 1 << 16;
  const uint64_t s = n / 8;
  const int k = 4;
  ApproximateBitmap filter(SmallParams(n, k), hash::MakeDoubleHashFamily());
  for (uint64_t key = 0; key < s; ++key) {
    filter.Insert(key, hash::CellRef{});
  }
  uint64_t false_hits = 0;
  const uint64_t trials = 20000;
  for (uint64_t i = 0; i < trials; ++i) {
    uint64_t probe_key = (uint64_t{1} << 40) + i;  // disjoint from inserts
    if (filter.Test(probe_key, hash::CellRef{})) ++false_hits;
  }
  double measured = static_cast<double>(false_hits) / trials;
  double theory = FalsePositiveRate(8.0, k);
  EXPECT_NEAR(measured, theory, 0.02);
}

// ---- Section 3.1 examples: encode a small boolean matrix, query subsets.

BooleanMatrix PaperStyleMatrix() {
  // An 8x6 matrix in the spirit of Figure 2 (the exact figure bits are not
  // in the text): sparse with a mix of empty and dense rows.
  return BooleanMatrix::FromStrings({
      "000001",
      "010000",
      "000000",  // row 3 (1-based) empty: the paper's Q1 target
      "001001",
      "000010",
      "100000",
      "000100",
      "010001",
  });
}

TEST(MatrixFilterTest, NoFalseNegativesOnAllCells) {
  BooleanMatrix m = PaperStyleMatrix();
  MatrixFilter filter(m, SmallParams(1 << 10, 3),
                      hash::MakeIndependentFamily());
  for (uint64_t i = 0; i < m.rows(); ++i) {
    for (uint32_t j = 0; j < m.cols(); ++j) {
      if (m.Get(i, j)) {
        EXPECT_TRUE(filter.Test(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(MatrixFilterTest, RowQueryLikePaperQ1) {
  // Q1 asks for the (empty) third row; the AB may return false positives
  // but never false negatives, so every reported 1 is a false positive and
  // every true 1 must be reported.
  BooleanMatrix m = PaperStyleMatrix();
  MatrixFilter filter(m, SmallParams(1 << 12, 4),
                      hash::MakeIndependentFamily());
  CellQuery q1 = BooleanMatrix::RowQuery(2, m.cols());
  std::vector<bool> approx = filter.Evaluate(q1);
  std::vector<bool> exact = m.Evaluate(q1);
  for (size_t idx = 0; idx < q1.size(); ++idx) {
    if (exact[idx]) EXPECT_TRUE(approx[idx]);
  }
}

TEST(MatrixFilterTest, ColumnQueryLikePaperQ2) {
  BooleanMatrix m = PaperStyleMatrix();
  MatrixFilter filter(m, SmallParams(1 << 12, 4),
                      hash::MakeIndependentFamily());
  CellQuery q2 = BooleanMatrix::ColumnQuery(5, m.rows());
  std::vector<bool> approx = filter.Evaluate(q2);
  std::vector<bool> exact = m.Evaluate(q2);
  ASSERT_EQ(approx.size(), 8u);
  for (size_t idx = 0; idx < q2.size(); ++idx) {
    if (exact[idx]) EXPECT_TRUE(approx[idx]) << idx;
  }
}

TEST(MatrixFilterTest, SparseConstructionMatchesDense) {
  // The COO constructor must produce a filter bit-identical to the dense
  // path over the same cells.
  BooleanMatrix m = PaperStyleMatrix();
  AbParams params = SmallParams(1 << 11, 3);
  MatrixFilter dense(m, params, hash::MakeDoubleHashFamily());
  MatrixFilter sparse(m.SetCells(), m.rows(), m.cols(), params,
                      hash::MakeDoubleHashFamily());
  EXPECT_EQ(dense.filter().bits(), sparse.filter().bits());
  EXPECT_EQ(dense.filter().insertions(), sparse.filter().insertions());
}

TEST(MatrixFilterTest, SparseConstructionAtScaleBeyondDense) {
  // A 10M x 10k matrix (10^11 cells) with only 5,000 set cells: the dense
  // form is unbuildable, the sparse form is trivial.
  std::mt19937_64 rng(31);
  std::vector<bitmap::Cell> cells;
  for (int i = 0; i < 5000; ++i) {
    cells.push_back(bitmap::Cell{rng() % 10000000, static_cast<uint32_t>(
                                                       rng() % 10000)});
  }
  MatrixFilter filter(cells, 10000000, 10000, SmallParams(1 << 16, 5),
                      hash::MakeIndependentFamily());
  for (const bitmap::Cell& c : cells) {
    ASSERT_TRUE(filter.Test(c.row, c.col));
  }
  // Random absent cells mostly miss.
  int fp = 0;
  for (int i = 0; i < 1000; ++i) {
    fp += filter.Test(rng() % 10000000, static_cast<uint32_t>(rng() % 10000));
  }
  EXPECT_LT(fp, 50);
}

TEST(MatrixFilterTest, DiagonalQueryCostsOnlyItsCardinality) {
  // Functional check of the O(c) claim: a diagonal is just another cell
  // list; the filter answers it without touching other cells.
  BooleanMatrix m(64, 64);
  for (uint64_t i = 0; i < 64; ++i) {
    if (i % 3 == 0) m.Set(i, static_cast<uint32_t>(i));
  }
  MatrixFilter filter(m, SmallParams(1 << 12, 4),
                      hash::MakeIndependentFamily());
  CellQuery diag = BooleanMatrix::DiagonalQuery(64, 64);
  std::vector<bool> approx = filter.Evaluate(diag);
  for (uint64_t i = 0; i < 64; ++i) {
    if (i % 3 == 0) EXPECT_TRUE(approx[i]) << i;
  }
}

TEST(PaperSection31ExampleTest, ConcatenateMappingWithMod32) {
  // Reconstructs the mechanics of the paper's Figures 2-5 example: an
  // 8x6 boolean matrix encoded into a 32-bit AB with k = 1,
  // F(i, j) = concatenate(i, j) (1-based, decimal) and H1(x) = x mod 32.
  // The exact figure bits aren't in the text, so the assertions cover the
  // example's stated properties rather than its literal output: member
  // cells always hit, and collisions (e.g. the paper's cell (6,5) setting
  // the bit that aliases query cell (3,3)) produce false positives only.
  BooleanMatrix m = PaperStyleMatrix();
  AbParams params = SmallParams(32, 1);
  ApproximateBitmap filter(params, hash::MakeCircularFamily());

  auto concat_key = [](uint64_t i, uint32_t j) {
    // concatenate(i, j) over 1-based indices: (3, 4) -> 34.
    uint64_t scale = 10;
    while (scale <= j + 1) scale *= 10;
    return (i + 1) * scale + (j + 1);
  };

  for (uint64_t i = 0; i < m.rows(); ++i) {
    for (uint32_t j = 0; j < m.cols(); ++j) {
      if (m.Get(i, j)) {
        filter.Insert(concat_key(i, j), hash::CellRef{i, j});
      }
    }
  }
  // No false negatives anywhere.
  uint64_t false_positives = 0;
  for (uint64_t i = 0; i < m.rows(); ++i) {
    for (uint32_t j = 0; j < m.cols(); ++j) {
      bool reported = filter.Test(concat_key(i, j), hash::CellRef{i, j});
      if (m.Get(i, j)) {
        EXPECT_TRUE(reported) << i << "," << j;
      } else if (reported) {
        ++false_positives;
      }
    }
  }
  // 8 set bits in 32 positions with k=1: false positives must exist for
  // some of the 40 negative cells (the paper's Q1/Q2 show exactly this)
  // but not swamp the answer.
  EXPECT_GT(false_positives, 0u);
  EXPECT_LT(false_positives, 20u);
}

// Property sweep: no false negatives for every hash family and k.
class NoFalseNegativePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NoFalseNegativePropertyTest, RandomMatrices) {
  auto [family_id, k] = GetParam();
  std::mt19937_64 rng(family_id * 100 + k);
  for (int round = 0; round < 3; ++round) {
    uint64_t rows = 20 + rng() % 200;
    uint32_t cols = 2 + rng() % 30;
    BooleanMatrix m(rows, cols);
    for (uint64_t i = 0; i < rows; ++i) {
      for (uint32_t j = 0; j < cols; ++j) {
        if (rng() % 5 == 0) m.Set(i, j);
      }
    }
    std::shared_ptr<const hash::HashFamily> family;
    switch (family_id) {
      case 0:
        family = hash::MakeIndependentFamily();
        break;
      case 1:
        family = hash::MakeSha1Family();
        break;
      case 2:
        family = hash::MakeDoubleHashFamily();
        break;
      default:
        family = hash::MakeCircularFamily();
        break;
    }
    MatrixFilter filter(m, SmallParams(1 << 13, k), family);
    for (uint64_t i = 0; i < rows; ++i) {
      for (uint32_t j = 0; j < cols; ++j) {
        if (m.Get(i, j)) {
          ASSERT_TRUE(filter.Test(i, j))
              << "false negative at (" << i << "," << j << ") family "
              << family_id << " k " << k;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FamiliesAndK, NoFalseNegativePropertyTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(SizingPolicyIntegrationTest, MinPrecisionPolicyIsHonoredInPractice) {
  // Contribution 3, measured end to end: size with ForMinPrecision, build,
  // and verify the realized precision meets the promise.
  std::mt19937_64 rng(77);
  BooleanMatrix m(4000, 8);
  for (uint64_t i = 0; i < 4000; ++i) m.Set(i, rng() % 8);
  uint64_t s = m.CountSetBits();
  for (double p_min : {0.9, 0.99}) {
    AbParams params = AbParams::ForMinPrecision(p_min, s);
    MatrixFilter filter(m, params, hash::MakeDoubleHashFamily());
    uint64_t fp = 0, negatives = 0;
    for (uint64_t i = 0; i < 4000; ++i) {
      for (uint32_t j = 0; j < 8; ++j) {
        if (!m.Get(i, j)) {
          ++negatives;
          fp += filter.Test(i, j);
        }
      }
    }
    double measured_fp = static_cast<double>(fp) / negatives;
    // Allow sampling noise: measured FP within 1.5x of the budgeted rate.
    EXPECT_LT(measured_fp, (1.0 - p_min) * 1.5) << p_min;
  }
}

TEST(SizingPolicyIntegrationTest, MaxSizePolicyUsesTheBudget) {
  std::mt19937_64 rng(78);
  BooleanMatrix m(2000, 4);
  for (uint64_t i = 0; i < 2000; ++i) m.Set(i, rng() % 4);
  AbParams params = AbParams::ForMaxSizeBits(1 << 16, m.CountSetBits());
  EXPECT_EQ(params.n_bits, uint64_t{1} << 16);
  MatrixFilter filter(m, params, hash::MakeDoubleHashFamily());
  EXPECT_EQ(filter.filter().size_bits(), uint64_t{1} << 16);
  // At alpha = 32.8 with optimal k, false positives should be rare.
  uint64_t fp = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      if (!m.Get(i, j) && filter.Test(i, j)) ++fp;
    }
  }
  EXPECT_LT(fp, 10u);
}

TEST(ApproximateBitmapTest, MoreSpaceFewerFalsePositives) {
  // Figure 10/11 qualitative shape: precision improves with AB size.
  std::mt19937_64 rng(5);
  BooleanMatrix m(500, 20);
  for (uint64_t i = 0; i < 500; ++i) m.Set(i, rng() % 20);
  double prev_fp_rate = 1.0;
  for (uint64_t n_bits : {1u << 9, 1u << 11, 1u << 13, 1u << 15}) {
    MatrixFilter filter(m, SmallParams(n_bits, 3),
                        hash::MakeIndependentFamily());
    uint64_t fp = 0, negatives = 0;
    for (uint64_t i = 0; i < 500; ++i) {
      for (uint32_t j = 0; j < 20; ++j) {
        if (!m.Get(i, j)) {
          ++negatives;
          if (filter.Test(i, j)) ++fp;
        }
      }
    }
    double rate = static_cast<double>(fp) / negatives;
    EXPECT_LE(rate, prev_fp_rate + 0.02) << n_bits;
    prev_fp_rate = rate;
  }
  EXPECT_LT(prev_fp_rate, 0.01);  // 2^15 bits for 500 insertions
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
