// Tests for the extension filters: the counting (deletable) AB and the
// cache-blocked AB.

#include <random>
#include <set>

#include "gtest/gtest.h"

#include "core/blocked_bitmap.h"
#include "core/counting_bitmap.h"

namespace abitmap {
namespace ab {
namespace {

AbParams Params(uint64_t n, int k) {
  AbParams p;
  p.n_bits = n;
  p.k = k;
  return p;
}

// ---------------------------------------------------------------- counting

TEST(CountingBitmapTest, InsertTestRemove) {
  CountingApproximateBitmap filter(Params(1 << 12, 4),
                                   hash::MakeIndependentFamily());
  for (uint64_t key = 0; key < 100; ++key) {
    filter.Insert(key, hash::CellRef{key, 0});
  }
  EXPECT_EQ(filter.live(), 100u);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(filter.Test(key, hash::CellRef{key, 0})) << key;
  }
  // Remove half; removed keys should (almost always) test negative while
  // remaining keys must still test positive.
  for (uint64_t key = 0; key < 50; ++key) {
    filter.Remove(key, hash::CellRef{key, 0});
  }
  EXPECT_EQ(filter.live(), 50u);
  for (uint64_t key = 50; key < 100; ++key) {
    EXPECT_TRUE(filter.Test(key, hash::CellRef{key, 0})) << key;
  }
  int still_positive = 0;
  for (uint64_t key = 0; key < 50; ++key) {
    still_positive += filter.Test(key, hash::CellRef{key, 0});
  }
  // A removed key may remain positive only via false-positive aliasing,
  // which at this load is rare.
  EXPECT_LE(still_positive, 3);
}

TEST(CountingBitmapTest, ReinsertionAfterRemoval) {
  CountingApproximateBitmap filter(Params(1 << 10, 3),
                                   hash::MakeDoubleHashFamily());
  filter.Insert(42, hash::CellRef{});
  filter.Remove(42, hash::CellRef{});
  filter.Insert(42, hash::CellRef{});
  EXPECT_TRUE(filter.Test(42, hash::CellRef{}));
  EXPECT_EQ(filter.live(), 1u);
}

TEST(CountingBitmapTest, DuplicateInsertionsNeedMatchingRemovals) {
  CountingApproximateBitmap filter(Params(1 << 10, 3),
                                   hash::MakeDoubleHashFamily());
  filter.Insert(7, hash::CellRef{});
  filter.Insert(7, hash::CellRef{});
  filter.Remove(7, hash::CellRef{});
  EXPECT_TRUE(filter.Test(7, hash::CellRef{}));  // one copy still live
  filter.Remove(7, hash::CellRef{});
  EXPECT_FALSE(filter.Test(7, hash::CellRef{}));
}

TEST(CountingBitmapDeathTest, RemovingAbsentKeyAborts) {
  CountingApproximateBitmap filter(Params(1 << 10, 3),
                                   hash::MakeDoubleHashFamily());
  filter.Insert(1, hash::CellRef{});
  EXPECT_DEATH(filter.Remove(999999, hash::CellRef{}), "AB_CHECK");
}

TEST(CountingBitmapTest, SizeIsFourBitsPerCounter) {
  CountingApproximateBitmap filter(Params(1 << 12, 2),
                                   hash::MakeDoubleHashFamily());
  EXPECT_EQ(filter.SizeInBytes(), (1u << 12) / 2);
}

TEST(CountingBitmapTest, NoFalseNegativesUnderChurn) {
  // Property: through a random insert/remove workload, every live key
  // tests positive.
  std::mt19937_64 rng(33);
  CountingApproximateBitmap filter(Params(1 << 14, 5),
                                   hash::MakeIndependentFamily());
  std::set<uint64_t> live;
  for (int op = 0; op < 3000; ++op) {
    if (live.empty() || rng() % 3 != 0) {
      uint64_t key = rng() % 100000;
      if (live.insert(key).second) {
        filter.Insert(key, hash::CellRef{key, 0});
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      filter.Remove(*it, hash::CellRef{*it, 0});
      live.erase(it);
    }
  }
  EXPECT_EQ(filter.live(), live.size());
  for (uint64_t key : live) {
    ASSERT_TRUE(filter.Test(key, hash::CellRef{key, 0})) << key;
  }
}

TEST(CountingBitmapTest, FillRatioTracksLoad) {
  CountingApproximateBitmap filter(Params(1 << 12, 4),
                                   hash::MakeDoubleHashFamily());
  EXPECT_EQ(filter.FillRatio(), 0.0);
  for (uint64_t key = 0; key < 200; ++key) {
    filter.Insert(key, hash::CellRef{});
  }
  double loaded = filter.FillRatio();
  EXPECT_GT(loaded, 0.1);
  for (uint64_t key = 0; key < 200; ++key) {
    filter.Remove(key, hash::CellRef{});
  }
  EXPECT_EQ(filter.FillRatio(), 0.0);  // all counters back to zero
}

// ---------------------------------------------------------------- blocked

TEST(BlockedBitmapTest, NoFalseNegatives) {
  BlockedApproximateBitmap filter(Params(1 << 16, 6));
  for (uint64_t key = 0; key < 5000; ++key) {
    filter.Insert(key * 977 + 13);
  }
  for (uint64_t key = 0; key < 5000; ++key) {
    ASSERT_TRUE(filter.Test(key * 977 + 13)) << key;
  }
}

TEST(BlockedBitmapTest, RoundsUpToWholeBlocks) {
  BlockedApproximateBitmap filter(Params(1000, 4));
  EXPECT_EQ(filter.size_bits(), 1024u);  // 2 blocks of 512
  EXPECT_EQ(filter.num_blocks(), 2u);
}

TEST(BlockedBitmapTest, FalsePositiveRateNearTheory) {
  // alpha = 8, k = 4: blocked FP is somewhat above the unblocked closed
  // form because of block-occupancy variance, but must stay in its
  // vicinity (within ~2x at 512-bit blocks and this load).
  const uint64_t n = 1 << 20;
  const uint64_t s = n / 8;
  BlockedApproximateBitmap filter(Params(n, 4));
  for (uint64_t key = 0; key < s; ++key) {
    filter.Insert(key);
  }
  uint64_t fp = 0;
  const uint64_t trials = 50000;
  for (uint64_t i = 0; i < trials; ++i) {
    fp += filter.Test((uint64_t{1} << 40) + i);
  }
  double measured = static_cast<double>(fp) / trials;
  double theory = FalsePositiveRate(8.0, 4);
  EXPECT_GT(measured, theory * 0.7);
  EXPECT_LT(measured, theory * 2.5);
}

TEST(BlockedBitmapTest, FillRatioMatchesExpectation) {
  const uint64_t n = 1 << 18;
  BlockedApproximateBitmap filter(Params(n, 4));
  for (uint64_t key = 0; key < n / 16; ++key) {
    filter.Insert(key);
  }
  // ks/n = 4/16 = 0.25 set operations per bit -> fill ~ 1 - e^-0.25 ~ 0.22.
  EXPECT_NEAR(filter.FillRatio(), 0.221, 0.02);
}

TEST(BlockedBitmapTest, DistinctKeysUseDistinctBlocks) {
  BlockedApproximateBitmap filter(Params(1 << 15, 3));
  // Insert one key; an unrelated key should almost surely miss.
  filter.Insert(123456789);
  int hits = 0;
  for (uint64_t key = 1; key <= 1000; ++key) {
    hits += filter.Test(key);
  }
  EXPECT_LE(hits, 2);
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
