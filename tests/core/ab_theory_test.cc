#include "core/ab_theory.h"

#include <cmath>

#include "gtest/gtest.h"
#include "util/math.h"

namespace abitmap {
namespace ab {
namespace {

TEST(TheoryTest, FalsePositiveRateClosedForm) {
  // Spot values of (1 - e^{-k/alpha})^k.
  EXPECT_NEAR(FalsePositiveRate(1.0, 1), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(FalsePositiveRate(8.0, 1), 1.0 - std::exp(-0.125), 1e-12);
  double fp = FalsePositiveRate(8.0, 6);
  EXPECT_NEAR(fp, std::pow(1.0 - std::exp(-6.0 / 8.0), 6), 1e-12);
}

TEST(TheoryTest, FalsePositiveRateDecreasesWithAlpha) {
  // Figure 8's shape: for fixed k, larger alpha means fewer collisions.
  for (int k = 1; k <= 10; ++k) {
    double prev = 1.0;
    for (double alpha : {2.0, 4.0, 8.0, 16.0, 32.0}) {
      double fp = FalsePositiveRate(alpha, k);
      EXPECT_LT(fp, prev) << "k=" << k << " alpha=" << alpha;
      prev = fp;
    }
  }
}

TEST(TheoryTest, FalsePositiveRateUnimodalInK) {
  // Figure 9's shape: FP falls to a minimum near alpha*ln2 then rises.
  for (double alpha : {4.0, 8.0, 16.0}) {
    int opt = OptimalK(alpha);
    for (int k = 1; k < opt; ++k) {
      EXPECT_GE(FalsePositiveRate(alpha, k),
                FalsePositiveRate(alpha, k + 1) - 1e-15)
          << "alpha=" << alpha << " k=" << k;
    }
    for (int k = opt; k <= opt + 5; ++k) {
      EXPECT_LE(FalsePositiveRate(alpha, k),
                FalsePositiveRate(alpha, k + 1) + 1e-15)
          << "alpha=" << alpha << " k=" << k;
    }
  }
}

TEST(TheoryTest, OptimalKNearAlphaLn2) {
  EXPECT_EQ(OptimalK(1.0), 1);
  for (double alpha : {2.0, 4.0, 8.0, 16.0, 23.0}) {
    int k = OptimalK(alpha);
    double real = alpha * std::log(2.0);
    EXPECT_GE(k, static_cast<int>(std::floor(real)));
    EXPECT_LE(k, static_cast<int>(std::floor(real)) + 1);
    // No integer k does better.
    double best = FalsePositiveRate(alpha, k);
    for (int other = 1; other <= 64; ++other) {
      EXPECT_LE(best, FalsePositiveRate(alpha, other) + 1e-15)
          << "alpha=" << alpha << " other=" << other;
    }
  }
}

TEST(TheoryTest, ExactApproachesAsymptotic) {
  // (1 - (1-1/n)^{ks})^k -> (1 - e^{-ks/n})^k as n grows.
  uint64_t s = 100000;
  double alpha = 8.0;
  uint64_t n = static_cast<uint64_t>(s * alpha);
  for (int k = 1; k <= 8; ++k) {
    EXPECT_NEAR(FalsePositiveRateExact(n, s, k), FalsePositiveRate(alpha, k),
                1e-5)
        << k;
  }
}

TEST(TheoryTest, AbSizeBitsMatchesPaperTable4) {
  // Table 4 (one AB per data set), sizes in bytes = AbSizeBits / 8.
  // Uniform: s = 200,000.
  EXPECT_EQ(AbSizeBits(200000, 2) / 8, 65536u);
  EXPECT_EQ(AbSizeBits(200000, 4) / 8, 131072u);
  EXPECT_EQ(AbSizeBits(200000, 8) / 8, 262144u);
  EXPECT_EQ(AbSizeBits(200000, 16) / 8, 524288u);
  // Landsat: s = 16,527,900.
  EXPECT_EQ(AbSizeBits(16527900, 2) / 8, 4194304u);
  EXPECT_EQ(AbSizeBits(16527900, 4) / 8, 8388608u);
  EXPECT_EQ(AbSizeBits(16527900, 8) / 8, 16777216u);
  EXPECT_EQ(AbSizeBits(16527900, 16) / 8, 33554432u);
  // HEP: s = 13,042,572 — same powers of two as Landsat (Section 6.1).
  EXPECT_EQ(AbSizeBits(13042572, 2) / 8, 4194304u);
  EXPECT_EQ(AbSizeBits(13042572, 16) / 8, 33554432u);
}

TEST(TheoryTest, AbSizeBitsMatchesPaperTable5) {
  // Table 5 (one AB per attribute): single-AB sizes.
  EXPECT_EQ(AbSizeBits(100000, 2) / 8, 32768u);    // Uniform
  EXPECT_EQ(AbSizeBits(275465, 2) / 8, 131072u);   // Landsat
  EXPECT_EQ(AbSizeBits(275465, 4) / 8, 262144u);   // Landsat, alpha=4
  EXPECT_EQ(AbSizeBits(2173762, 2) / 8, 1048576u); // HEP
  EXPECT_EQ(AbSizeBits(2173762, 16) / 8, 8388608u);
}

TEST(TheoryTest, AlphaForPrecisionInvertsFalsePositiveRate) {
  for (double p_min : {0.5, 0.9, 0.99, 0.999}) {
    for (int k = 1; k <= 10; ++k) {
      double alpha = AlphaForPrecision(p_min, k);
      EXPECT_NEAR(Precision(alpha, k), p_min, 1e-9)
          << "p=" << p_min << " k=" << k;
    }
  }
}

TEST(TheoryTest, ForAlphaRealizesRequestedOrBetter) {
  AbParams p = AbParams::ForAlpha(8.0, 4, 100000);
  EXPECT_EQ(p.n_bits, AbSizeBits(100000, 8.0));
  EXPECT_GE(p.alpha, 8.0);
  EXPECT_EQ(p.k, 4);
}

TEST(TheoryTest, ForMaxSizePolicy) {
  uint64_t s = 1000000;
  AbParams p = AbParams::ForMaxSizeBits(1 << 23, s);
  EXPECT_EQ(p.n_bits, uint64_t{1} << 23);
  EXPECT_NEAR(p.alpha, static_cast<double>(1 << 23) / s, 1e-12);
  EXPECT_EQ(p.k, OptimalK(p.alpha));
  // A non-power-of-two budget rounds down.
  AbParams q = AbParams::ForMaxSizeBits((1 << 23) + 5000, s);
  EXPECT_EQ(q.n_bits, uint64_t{1} << 23);
}

TEST(TheoryTest, ForMinPrecisionPolicy) {
  uint64_t s = 500000;
  for (double p_min : {0.9, 0.95, 0.99}) {
    AbParams p = AbParams::ForMinPrecision(p_min, s);
    EXPECT_GE(p.ExpectedPrecision(), p_min);
    EXPECT_TRUE(util::IsPowerOfTwo(p.n_bits));
    // Minimality: half the size must violate the precision bound at any k.
    uint64_t half = p.n_bits / 2;
    double best_half = 0;
    for (int k = 1; k <= 32; ++k) {
      double alpha = static_cast<double>(half) / s;
      best_half = std::max(best_half, Precision(alpha, k));
    }
    EXPECT_LT(best_half, p_min) << p_min;
  }
}

TEST(TheoryTest, PrecisionMonotoneInAlphaAtOptimalK) {
  double prev = 0;
  for (double alpha : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    double p = Precision(alpha, OptimalK(alpha));
    EXPECT_GT(p, prev);
    prev = p;
  }
  // At alpha=16 with optimal k precision is essentially 1 (Figure 8).
  EXPECT_GT(Precision(16.0, OptimalK(16.0)), 0.999);
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
