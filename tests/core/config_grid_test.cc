// Exhaustive configuration grid: the AB's core guarantee (no false
// negatives) and its structural invariants must hold for EVERY combination
// of encoding level, hash scheme, alpha and k — not just the defaults the
// other tests exercise.

#include <tuple>

#include "gtest/gtest.h"

#include "core/ab_index.h"
#include "data/generators.h"

namespace abitmap {
namespace ab {
namespace {

using GridParam = std::tuple<Level, HashScheme, double, int>;

class ConfigGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(ConfigGridTest, NoFalseNegativesAndSaneStructure) {
  auto [level, scheme, alpha, k] = GetParam();
  if (level == Level::kPerColumn && scheme == HashScheme::kColumnGroup) {
    GTEST_SKIP() << "column-group hash is undefined at the per-column level";
  }
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "grid", 400, 3, 7, data::Distribution::kUniform,
      static_cast<uint64_t>(alpha * 100 + k));

  AbConfig cfg;
  cfg.level = level;
  cfg.scheme = scheme;
  cfg.alpha = alpha;
  cfg.k = k;
  AbIndex index = AbIndex::Build(d, cfg);

  // Structure.
  switch (level) {
    case Level::kPerDataset:
      EXPECT_EQ(index.num_filters(), 1u);
      break;
    case Level::kPerAttribute:
      EXPECT_EQ(index.num_filters(), 3u);
      break;
    case Level::kPerColumn:
      EXPECT_EQ(index.num_filters(), 21u);
      break;
  }
  EXPECT_EQ(index.SizeInBytes(),
            ComputeLevelSize(d, level, alpha).total_bytes);

  // The guarantee.
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint64_t i = 0; i < 400; ++i) {
      ASSERT_TRUE(index.TestCell(i, a, d.values[a][i]))
          << LevelName(level) << "/" << HashSchemeName(scheme)
          << " alpha=" << alpha << " k=" << k << " row=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigGridTest,
    ::testing::Combine(
        ::testing::Values(Level::kPerDataset, Level::kPerAttribute,
                          Level::kPerColumn),
        ::testing::Values(HashScheme::kIndependent, HashScheme::kSha1,
                          HashScheme::kDoubleHash, HashScheme::kCircular,
                          HashScheme::kColumnGroup),
        ::testing::Values(2.0, 8.0),
        ::testing::Values(1, 4, 0 /* auto */)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      // NOTE: no structured bindings here — the commas inside [] would be
      // split by the INSTANTIATE macro's argument parsing.
      std::string name;
      switch (std::get<0>(info.param)) {
        case Level::kPerDataset: name = "Dataset"; break;
        case Level::kPerAttribute: name = "Attr"; break;
        case Level::kPerColumn: name = "Column"; break;
      }
      switch (std::get<1>(info.param)) {
        case HashScheme::kIndependent: name += "Indep"; break;
        case HashScheme::kSha1: name += "Sha1"; break;
        case HashScheme::kDoubleHash: name += "Double"; break;
        case HashScheme::kCircular: name += "Circular"; break;
        case HashScheme::kColumnGroup: name += "ColGroup"; break;
      }
      name += "A" + std::to_string(static_cast<int>(std::get<2>(info.param)));
      name += "K" + std::to_string(std::get<3>(info.param));
      return name;
    });

// Round-trip the whole grid through serialization as well: a filter that
// survives a save/load must answer identically.
class ConfigGridSerializationTest
    : public ::testing::TestWithParam<GridParam> {};

TEST_P(ConfigGridSerializationTest, SerializedIndexAnswersIdentically) {
  auto [level, scheme, alpha, k] = GetParam();
  if (level == Level::kPerColumn && scheme == HashScheme::kColumnGroup) {
    GTEST_SKIP();
  }
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "grid", 200, 2, 5, data::Distribution::kUniform,
      static_cast<uint64_t>(alpha * 10 + k + 99));
  AbConfig cfg;
  cfg.level = level;
  cfg.scheme = scheme;
  cfg.alpha = alpha;
  cfg.k = k;
  AbIndex original = AbIndex::Build(d, cfg);
  util::ByteWriter w;
  original.Serialize(&w);
  util::ByteReader r(w.bytes());
  util::StatusOr<AbIndex> back = AbIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (uint64_t i = 0; i < 200; i += 7) {
    for (uint32_t a = 0; a < 2; ++a) {
      for (uint32_t b = 0; b < 5; ++b) {
        ASSERT_EQ(back.value().TestCell(i, a, b), original.TestCell(i, a, b))
            << LevelName(level) << "/" << HashSchemeName(scheme);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigGridSerializationTest,
    ::testing::Combine(
        ::testing::Values(Level::kPerDataset, Level::kPerAttribute,
                          Level::kPerColumn),
        ::testing::Values(HashScheme::kIndependent, HashScheme::kDoubleHash,
                          HashScheme::kColumnGroup),
        ::testing::Values(8.0), ::testing::Values(3)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case Level::kPerDataset: name = "Dataset"; break;
        case Level::kPerAttribute: name = "Attr"; break;
        case Level::kPerColumn: name = "Column"; break;
      }
      switch (std::get<1>(info.param)) {
        case HashScheme::kIndependent: name += "Indep"; break;
        case HashScheme::kSha1: name += "Sha1"; break;
        case HashScheme::kDoubleHash: name += "Double"; break;
        case HashScheme::kCircular: name += "Circular"; break;
        case HashScheme::kColumnGroup: name += "ColGroup"; break;
      }
      return name;
    });

}  // namespace
}  // namespace ab
}  // namespace abitmap
