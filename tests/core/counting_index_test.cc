#include "core/counting_index.h"

#include <random>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "data/query_gen.h"

namespace abitmap {
namespace ab {
namespace {

bitmap::BinnedDataset TestDataset(uint64_t rows, uint64_t seed) {
  return data::MakeSynthetic("t", rows, 3, 8, data::Distribution::kUniform,
                             seed);
}

class CountingIndexLevelTest : public ::testing::TestWithParam<Level> {};

TEST_P(CountingIndexLevelTest, BuildAndProbe) {
  bitmap::BinnedDataset d = TestDataset(600, 1);
  AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 8;
  CountingAbIndex index = CountingAbIndex::Build(d, cfg);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint64_t i = 0; i < 600; ++i) {
      EXPECT_TRUE(index.TestCell(i, a, d.values[a][i]));
    }
  }
  // 4 bits per counter: size matches 4x the equivalent bit filter.
  EXPECT_GT(index.SizeInBytes(), 0u);
}

TEST_P(CountingIndexLevelTest, UpdateMovesTheCell) {
  bitmap::BinnedDataset d = TestDataset(400, 2);
  AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 16;
  CountingAbIndex index = CountingAbIndex::Build(d, cfg);
  // Move each of the first 100 rows' attribute 1 to a different bin; the
  // new cell must hit, the old cell should (statistically) miss — false
  // positives are possible but rare at alpha=16.
  int stale_hits = 0;
  for (uint64_t row = 0; row < 100; ++row) {
    uint32_t ob = d.values[1][row];
    uint32_t nb = (ob + 3) % 8;
    index.UpdateCell(row, 1, ob, nb);
    d.values[1][row] = nb;
    EXPECT_TRUE(index.TestCell(row, 1, nb)) << row;
    stale_hits += index.TestCell(row, 1, ob);
  }
  EXPECT_LE(stale_hits, 5);
}

TEST_P(CountingIndexLevelTest, DeleteRowStopsMatching) {
  bitmap::BinnedDataset d = TestDataset(300, 3);
  AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 16;
  CountingAbIndex index = CountingAbIndex::Build(d, cfg);
  std::vector<uint32_t> bins = {d.values[0][5], d.values[1][5],
                                d.values[2][5]};
  index.DeleteRow(5, bins);
  int hits = 0;
  for (uint32_t a = 0; a < 3; ++a) hits += index.TestCell(5, a, bins[a]);
  EXPECT_LE(hits, 1);  // residual hits only via aliasing
  // Other rows unaffected.
  EXPECT_TRUE(index.TestCell(6, 0, d.values[0][6]));
}

INSTANTIATE_TEST_SUITE_P(Levels, CountingIndexLevelTest,
                         ::testing::Values(Level::kPerDataset,
                                           Level::kPerAttribute,
                                           Level::kPerColumn),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           switch (info.param) {
                             case Level::kPerDataset:
                               return "PerDataset";
                             case Level::kPerAttribute:
                               return "PerAttribute";
                             default:
                               return "PerColumn";
                           }
                         });

TEST(CountingIndexTest, InsertRowExtends) {
  bitmap::BinnedDataset d = TestDataset(100, 4);
  AbConfig cfg;
  cfg.alpha = 8;
  CountingAbIndex index = CountingAbIndex::Build(d, cfg);
  uint64_t row = index.InsertRow({1, 2, 3});
  EXPECT_EQ(row, 100u);
  EXPECT_EQ(index.num_rows(), 101u);
  EXPECT_TRUE(index.TestCell(row, 0, 1));
  EXPECT_TRUE(index.TestCell(row, 1, 2));
  EXPECT_TRUE(index.TestCell(row, 2, 3));
}

TEST(CountingIndexTest, QueriesTrackMutableGroundTruth) {
  // Churn a relation (updates + inserts) and verify queries stay a
  // superset of the live ground truth with perfect recall.
  std::mt19937_64 rng(5);
  bitmap::BinnedDataset d = TestDataset(1000, 6);
  AbConfig cfg;
  cfg.alpha = 16;
  CountingAbIndex index = CountingAbIndex::Build(d, cfg);

  for (int op = 0; op < 2000; ++op) {
    uint64_t row = rng() % d.num_rows();
    uint32_t attr = rng() % 3;
    uint32_t new_bin = rng() % 8;
    index.UpdateCell(row, attr, d.values[attr][row], new_bin);
    d.values[attr][row] = new_bin;
  }

  bitmap::BitmapTable truth = bitmap::BitmapTable::Build(d);
  data::QueryGenParams qp;
  qp.num_queries = 20;
  qp.rows_queried = 300;
  qp.seed = 7;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(d, qp)) {
    data::QueryAccuracy acc =
        data::CompareResults(truth.Evaluate(q), index.Evaluate(q));
    EXPECT_EQ(acc.false_negatives, 0u);
    EXPECT_GT(acc.precision(), 0.9);
  }
}

TEST(CountingIndexDeathTest, UpdateWithWrongOldBinAborts) {
  bitmap::BinnedDataset d = TestDataset(50, 8);
  AbConfig cfg;
  cfg.alpha = 16;
  cfg.level = Level::kPerColumn;  // per-column: wrong bin hits a filter
                                  // that never saw the row's key
  CountingAbIndex index = CountingAbIndex::Build(d, cfg);
  uint32_t actual = d.values[0][0];
  uint32_t wrong = (actual + 1) % 8;
  // Removing a never-inserted cell underflows a counter (with high
  // probability) and must abort rather than poison the filter.
  EXPECT_DEATH(
      {
        for (int i = 0; i < 50; ++i) {
          index.UpdateCell(0, 0, wrong, actual);
        }
      },
      "AB_CHECK");
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
