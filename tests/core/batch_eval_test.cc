// Equivalence contract of the batched/parallel evaluation pipeline: every
// batched kernel (hash-family ProbesBatch/ProbesRange, filter TestBatch,
// index EvaluateBatched/EvaluateParallel, parallel build) must be
// bit-identical to its scalar counterpart — batching is a cost-model
// change, never a semantic one.

#include <atomic>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"

#include "core/ab_index.h"
#include "core/approximate_bitmap.h"
#include "core/blocked_bitmap.h"
#include "data/generators.h"
#include "data/query_gen.h"
#include "hash/hash_family.h"
#include "util/thread_pool.h"

namespace abitmap {
namespace ab {
namespace {

std::vector<std::shared_ptr<const hash::HashFamily>> AllFamilies() {
  return {
      hash::MakeIndependentFamily(), hash::MakeSha1Family(),
      hash::MakeDoubleHashFamily(),  hash::MakeCircularFamily(),
      hash::MakeColumnGroupFamily(8),
  };
}

TEST(ProbesBatchTest, MatchesScalarProbesForEveryFamily) {
  constexpr uint64_t kN = 1 << 16;  // power of two for SHA-1
  constexpr size_t kK = 12;         // > one SHA-1 digest at m=16
  constexpr size_t kCount = 37;     // not a multiple of any window
  std::mt19937_64 rng(99);
  std::vector<uint64_t> keys(kCount);
  std::vector<hash::CellRef> cells(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    keys[i] = rng();
    cells[i] = hash::CellRef{rng() % 10000, static_cast<uint32_t>(i % 8)};
  }
  for (const auto& family : AllFamilies()) {
    std::vector<uint64_t> batch(kCount * kK);
    family->ProbesBatch(keys.data(), cells.data(), kCount, kK, kN,
                        batch.data());
    for (size_t i = 0; i < kCount; ++i) {
      uint64_t scalar[kK];
      family->Probes(keys[i], cells[i], kK, kN, scalar);
      for (size_t t = 0; t < kK; ++t) {
        ASSERT_EQ(batch[i * kK + t], scalar[t])
            << family->name() << " key " << i << " probe " << t;
      }
    }
  }
}

TEST(ProbesRangeTest, MatchesProbesSliceForEveryFamily) {
  constexpr uint64_t kN = 1 << 16;
  constexpr size_t kK = 24;  // spans three SHA-1 digest blocks at m=16
  std::mt19937_64 rng(7);
  for (const auto& family : AllFamilies()) {
    for (int trial = 0; trial < 20; ++trial) {
      uint64_t key = rng();
      hash::CellRef cell{rng() % 1000, static_cast<uint32_t>(trial % 8)};
      uint64_t full[kK];
      family->Probes(key, cell, kK, kN, full);
      size_t begin = rng() % kK;
      size_t end = begin + rng() % (kK - begin + 1);
      std::vector<uint64_t> slice(end - begin);
      family->ProbesRange(key, cell, begin, end, kN, slice.data());
      for (size_t t = begin; t < end; ++t) {
        ASSERT_EQ(slice[t - begin], full[t])
            << family->name() << " slice [" << begin << ", " << end << ")";
      }
    }
  }
}

TEST(TestBatchTest, MatchesScalarTestForEveryFamilyAndK) {
  std::mt19937_64 rng(1234);
  for (const auto& family : AllFamilies()) {
    for (int k : {1, 4, 12}) {
      AbParams params;
      params.n_bits = 1 << 15;
      params.k = k;
      ApproximateBitmap filter(params, family);
      std::vector<uint64_t> keys;
      std::vector<hash::CellRef> cells;
      for (uint64_t i = 0; i < 500; ++i) {
        hash::CellRef cell{i, static_cast<uint32_t>(i % 4)};
        uint64_t key = (i << 3) | (i % 4);
        filter.Insert(key, cell);
        keys.push_back(key);
        cells.push_back(cell);
      }
      // Mix in absent cells (likely negative) at uneven positions.
      for (uint64_t i = 0; i < 300; ++i) {
        uint64_t row = 100000 + rng() % 100000;
        hash::CellRef cell{row, static_cast<uint32_t>(rng() % 4)};
        keys.push_back((row << 3) | cell.col);
        cells.push_back(cell);
      }
      std::vector<uint8_t> batch(keys.size());
      filter.TestBatch(keys.data(), cells.data(), keys.size(), batch.data());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(batch[i] != 0, filter.Test(keys[i], cells[i]))
            << family->name() << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(TestBatchTest, MaskVariantAndOddWindowSizes) {
  AbParams params;
  params.n_bits = 1 << 12;
  params.k = 6;
  ApproximateBitmap filter(params, hash::MakeIndependentFamily());
  std::vector<uint64_t> keys;
  std::vector<hash::CellRef> cells;
  for (uint64_t i = 0; i < 64; ++i) {
    if (i % 3 == 0) filter.Insert(i, hash::CellRef{i, 0});
    keys.push_back(i);
    cells.push_back(hash::CellRef{i, 0});
  }
  for (size_t count : {size_t{1}, size_t{5}, size_t{31}, size_t{32}}) {
    uint64_t mask = filter.TestBatchMask(keys.data(), cells.data(), count);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ((mask >> i) & 1, filter.Test(keys[i], cells[i]) ? 1u : 0u)
          << "count " << count << " lane " << i;
    }
    // No bits beyond the window.
    if (count < 64) ASSERT_EQ(mask >> count, 0u);
  }
}

TEST(TestBatchTest, BlockedFilterMatchesScalar) {
  AbParams params;
  params.n_bits = 1 << 14;
  params.k = 5;
  BlockedApproximateBitmap filter(params);
  std::mt19937_64 rng(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 400; ++i) {
    uint64_t key = rng();
    if (i % 2 == 0) filter.Insert(key);
    keys.push_back(key);
  }
  std::vector<uint8_t> batch(keys.size());
  filter.TestBatch(keys.data(), keys.size(), batch.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batch[i] != 0, filter.Test(keys[i])) << "key " << i;
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, touched.size(),
                   [&](uint64_t begin, uint64_t end, int /*chunk*/) {
                     for (uint64_t i = begin; i < end; ++i) {
                       touched[i].fetch_add(1);
                     }
                   });
  for (size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
  // Empty and tiny ranges are handled.
  pool.ParallelFor(5, 5, [](uint64_t, uint64_t, int) { FAIL(); });
  std::atomic<int> tiny{0};
  pool.ParallelFor(0, 1, [&](uint64_t b, uint64_t e, int) {
    tiny.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(tiny.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitDrainsAllTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done]() { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

std::vector<HashScheme> SchemesFor(Level level) {
  // Column Group only addresses multi-column filters (per-dataset /
  // per-attribute); the per-column level excludes it by construction.
  std::vector<HashScheme> schemes = {HashScheme::kIndependent,
                                     HashScheme::kSha1,
                                     HashScheme::kDoubleHash};
  if (level != Level::kPerColumn) schemes.push_back(HashScheme::kColumnGroup);
  return schemes;
}

TEST(BatchEvalTest, ParallelBuildBitIdenticalAcrossLevelsAndSchemes) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "pb", 2500, 3, 8, data::Distribution::kUniform, 77);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    for (HashScheme scheme : SchemesFor(level)) {
      AbConfig cfg;
      cfg.level = level;
      cfg.alpha = 8;
      cfg.scheme = scheme;
      AbIndex serial = AbIndex::Build(d, cfg);
      AbIndex parallel = AbIndex::BuildParallel(d, cfg, 4);
      ASSERT_EQ(serial.num_filters(), parallel.num_filters());
      for (size_t f = 0; f < serial.num_filters(); ++f) {
        ASSERT_EQ(serial.filter(f).bits(), parallel.filter(f).bits())
            << LevelName(level) << "/" << HashSchemeName(scheme)
            << " filter " << f;
      }
    }
  }
}

TEST(BatchEvalTest, BatchedAndParallelEvaluateMatchScalarOnRandomQueries) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "be", 4000, 4, 10, data::Distribution::kZipf, 31);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    for (HashScheme scheme : SchemesFor(level)) {
      AbConfig cfg;
      cfg.level = level;
      cfg.alpha = 6;
      cfg.scheme = scheme;
      AbIndex index = AbIndex::Build(d, cfg);
      data::QueryGenParams params;
      params.num_queries = 8;
      params.qdim = 2;
      params.bins_per_attr = 3;
      params.rows_queried = 1500;
      params.seed = 11;
      std::vector<bitmap::BitmapQuery> queries =
          data::GenerateQueries(d, params);
      // Also cover the whole-relation form (empty row list).
      bitmap::BitmapQuery whole = queries[0];
      whole.rows.clear();
      queries.push_back(whole);
      util::ThreadPool pool(4);
      for (size_t q = 0; q < queries.size(); ++q) {
        std::vector<bool> scalar = index.Evaluate(queries[q]);
        EXPECT_EQ(index.EvaluateBatched(queries[q]), scalar)
            << LevelName(level) << "/" << HashSchemeName(scheme)
            << " query " << q << " (batched)";
        EXPECT_EQ(index.EvaluateParallel(queries[q], 3), scalar)
            << LevelName(level) << "/" << HashSchemeName(scheme)
            << " query " << q << " (parallel, owned pool)";
        EXPECT_EQ(index.EvaluateParallel(queries[q], &pool), scalar)
            << LevelName(level) << "/" << HashSchemeName(scheme)
            << " query " << q << " (parallel, shared pool)";
      }
    }
  }
}

TEST(BatchEvalTest, PreserveQueryOrderIsHonoredByBatchedPath) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "ord", 1000, 3, 6, data::Distribution::kZipf, 13);
  AbConfig cfg;
  cfg.alpha = 4;  // low alpha: plenty of false positives to order around
  cfg.preserve_query_order = true;
  AbIndex index = AbIndex::Build(d, cfg);
  bitmap::BitmapQuery query;
  query.ranges.push_back(bitmap::AttributeRange{0, 0, 1});
  query.ranges.push_back(bitmap::AttributeRange{2, 3, 5});
  EXPECT_EQ(index.EvaluateBatched(query), index.Evaluate(query));
  EXPECT_EQ(index.EvaluateParallel(query, 2), index.Evaluate(query));
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
