#include "core/cell_mapper.h"

#include <set>

#include "gtest/gtest.h"

namespace abitmap {
namespace ab {
namespace {

TEST(CellMapperTest, RowAndColumnKeysAreUnique) {
  // "This string is in fact unique when w is large enough to accommodate
  // all j" — verify exhaustively for a small matrix.
  CellMapper mapper = CellMapper::RowAndColumn(9);
  std::set<uint64_t> keys;
  for (uint64_t row = 0; row < 300; ++row) {
    for (uint32_t col = 0; col < 9; ++col) {
      EXPECT_TRUE(keys.insert(mapper.Key(row, col)).second)
          << row << "," << col;
    }
  }
}

TEST(CellMapperTest, OffsetCoversColumnCount) {
  EXPECT_EQ(CellMapper::RowAndColumn(1).offset_bits(), 1);
  EXPECT_EQ(CellMapper::RowAndColumn(2).offset_bits(), 1);
  EXPECT_EQ(CellMapper::RowAndColumn(3).offset_bits(), 2);
  EXPECT_EQ(CellMapper::RowAndColumn(900).offset_bits(), 10);
  EXPECT_EQ(CellMapper::RowAndColumn(1024).offset_bits(), 10);
  EXPECT_EQ(CellMapper::RowAndColumn(1025).offset_bits(), 11);
}

TEST(CellMapperTest, KeyLayoutIsShiftOr) {
  CellMapper mapper = CellMapper::RowAndColumn(100);  // w = 7
  EXPECT_EQ(mapper.offset_bits(), 7);
  EXPECT_EQ(mapper.Key(5, 3), (uint64_t{5} << 7) | 3);
  EXPECT_EQ(mapper.Key(0, 99), 99u);
}

TEST(CellMapperTest, RowOnlyIgnoresColumn) {
  CellMapper mapper = CellMapper::RowOnly();
  EXPECT_EQ(mapper.Key(42, 0), 42u);
  EXPECT_EQ(mapper.Key(42, 7), 42u);
  EXPECT_EQ(mapper.offset_bits(), 0);
}

TEST(CellMapperTest, LargeRowIdsDoNotCollide) {
  // Rows up to the paper's HEP scale with 66 columns (w = 7).
  CellMapper mapper = CellMapper::RowAndColumn(66);
  uint64_t row = 2173761;  // last HEP row
  EXPECT_NE(mapper.Key(row, 0), mapper.Key(row - 1, 65));
  EXPECT_EQ(mapper.Key(row, 65) >> mapper.offset_bits(), row);
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
