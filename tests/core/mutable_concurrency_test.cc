#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "bitmap/query.h"
#include "bitmap/schema.h"
#include "core/mutable_index.h"
#include "data/generators.h"

/// The reader/writer interleaving battery for MutableAbIndex. These tests
/// are the TSan targets for the lock-free read protocol: run them under
/// -fsanitize=thread (tools/check.sh's TSan pass does) and any
/// non-atomic access in the probe path, a mis-ordered publication, or a
/// seqlock window that admits a torn read shows up as a race or an
/// assertion.
///
/// The correctness property asserted throughout is the one-sided
/// guarantee extended to concurrency: a reader that observes a row as
/// live (RowLive, or a pre-agreed immortal set) must find every one of
/// that row's cells present — zero false negatives, no matter how the
/// writer's inserts, deletes, and generation rebuilds interleave.
///
/// Sized for small machines (CI containers pin us to 1-2 cores): few
/// threads, iteration-bounded loops, no wall-clock dependence.

namespace abitmap {
namespace ab {
namespace {

MutableAbIndex::Options SmallOptions() {
  MutableAbIndex::Options options;
  options.config.level = Level::kPerAttribute;
  options.config.alpha = 8;
  options.auto_rebuild = false;
  return options;
}

TEST(MutableConcurrencyTest, ReadersSeeNoFalseNegativesDuringChurn) {
  // Immortal rows are never deleted; the writer churns the rows around
  // them. Readers hammer the immortal set the whole time.
  constexpr uint64_t kImmortal = 64;
  constexpr uint64_t kChurnRows = 256;
  constexpr int kReaders = 3;
  constexpr int kWriterOps = 4000;
  // Probe-bounded readers, not stop-flag readers: on a single-core host
  // the scheduler can run the whole writer loop before a reader ever
  // starts, which would make a stop-flag reader exit with zero probes.
  constexpr int kProbesPerReader = 3000;

  bitmap::BinnedDataset d = data::MakeSynthetic(
      "t", kImmortal + kChurnRows, 3, 8, data::Distribution::kUniform, 29);
  auto index = MutableAbIndex::Build(d, SmallOptions());

  std::atomic<uint64_t> false_negatives{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      std::mt19937_64 rng(100 + t);
      for (int p = 0; p < kProbesPerReader; ++p) {
        uint64_t row = rng() % kImmortal;
        uint32_t attr = static_cast<uint32_t>(rng() % 3);
        if (!index->TestCell(row, attr, d.values[attr][row])) {
          false_negatives.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::mt19937_64 rng(31);
  // Ids are append-only, so "reviving" a churn slot means inserting a
  // fresh row and remembering its id; the immortal set is what readers
  // assert on.
  std::vector<uint8_t> churn_alive(kChurnRows, 1);
  std::vector<uint64_t> slot_row(kChurnRows);
  for (uint64_t i = 0; i < kChurnRows; ++i) slot_row[i] = kImmortal + i;
  for (int op = 0; op < kWriterOps; ++op) {
    uint64_t i = rng() % kChurnRows;
    if (churn_alive[i]) {
      ASSERT_TRUE(index->DeleteRow(slot_row[i]));
      churn_alive[i] = 0;
    } else {
      std::vector<uint32_t> bins = {static_cast<uint32_t>(rng() % 8),
                                    static_cast<uint32_t>(rng() % 8),
                                    static_cast<uint32_t>(rng() % 8)};
      slot_row[i] = index->InsertRow(bins);
      churn_alive[i] = 1;
    }
    // Surrender the core periodically so reader probes interleave with
    // the churn even when the host has a single hardware thread.
    if ((op & 63) == 0) std::this_thread::yield();
  }
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(false_negatives.load(), 0u);
}

TEST(MutableConcurrencyTest, InsertVisibilityIsPublishedBeforeTheRowId) {
  // Writer inserts rows; a reader polls num_rows() and immediately probes
  // every newly committed row. The publication order (cells -> live bit
  // -> committed counter) makes every committed row fully visible.
  constexpr uint64_t kRows = 3000;
  std::vector<bitmap::AttributeInfo> attrs = {{"a", 8}, {"b", 8}};
  auto index = MutableAbIndex::BuildEmpty(attrs, SmallOptions(), 64);

  // Bins are a pure function of the row id, so the reader derives the
  // expected cells without sharing state with the writer.
  auto bins_for = [](uint64_t row) {
    return std::vector<uint32_t>{static_cast<uint32_t>(row % 8),
                                 static_cast<uint32_t>((row / 8) % 8)};
  };

  std::atomic<uint64_t> false_negatives{0};
  std::thread reader([&]() {
    uint64_t seen = 0;
    while (seen < kRows) {
      uint64_t committed = index->num_rows();
      for (; seen < committed; ++seen) {
        std::vector<uint32_t> bins = bins_for(seen);
        if (!index->RowLive(seen) || !index->TestCell(seen, 0, bins[0]) ||
            !index->TestCell(seen, 1, bins[1])) {
          false_negatives.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::yield();
    }
  });

  for (uint64_t row = 0; row < kRows; ++row) index->InsertRow(bins_for(row));
  reader.join();
  EXPECT_EQ(false_negatives.load(), 0u);
}

TEST(MutableConcurrencyTest, DeleteClearsLivenessBeforeCells) {
  // Readers must never see dead-row-still-live inconsistencies *in the
  // direction that breaks queries*: once DeleteRow returns, RowLive is
  // false. While a delete is in flight a reader may see either state of
  // the row, but a live observation must imply complete cells.
  constexpr int kRounds = 1500;
  std::vector<bitmap::AttributeInfo> attrs = {{"a", 8}, {"b", 8}};
  auto index = MutableAbIndex::BuildEmpty(attrs, SmallOptions(), 64);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::thread reader([&]() {
    std::mt19937_64 rng(41);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t committed = index->num_rows();
      if (committed == 0) continue;
      uint64_t row = rng() % committed;
      if (index->RowLive(row)) {
        uint32_t b0 = static_cast<uint32_t>(row % 8);
        bool hit = index->TestCell(row, 0, b0);
        // A miss is only a violation if the row is *still* live: ids are
        // never revived, so live-after implies live-throughout. A row
        // deleted mid-probe may legitimately answer false — it is dead.
        if (!hit && index->RowLive(row)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    uint64_t row = index->InsertRow(
        {static_cast<uint32_t>((index->num_rows()) % 8),
         static_cast<uint32_t>((index->num_rows() / 8) % 8)});
    if (round % 2 == 0) index->DeleteRow(row);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(MutableConcurrencyTest, RebuildSwapsGenerationsUnderReaders) {
  // Readers run full Evaluate() queries while the writer keeps deleting,
  // inserting, and force-rebuilding; every query lands on some pinned
  // generation and the immortal rows must match in all of them.
  constexpr uint64_t kImmortal = 48;
  constexpr int kReaders = 2;
  constexpr int kRebuilds = 8;  // > the 4 generation slots

  bitmap::BinnedDataset d = data::MakeSynthetic(
      "t", kImmortal, 2, 4, data::Distribution::kUniform, 43);
  auto index = MutableAbIndex::Build(d, SmallOptions());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      std::mt19937_64 rng(200 + t);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t row = rng() % kImmortal;
        bitmap::BitmapQuery q;
        q.ranges.push_back({0, d.values[0][row], d.values[0][row]});
        q.ranges.push_back({1, d.values[1][row], d.values[1][row]});
        q.rows.push_back(row);
        std::vector<bool> hit = index->Evaluate(q);
        if (hit.size() != 1 || !hit[0]) {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::mt19937_64 rng(47);
  for (int r = 0; r < kRebuilds; ++r) {
    std::vector<uint64_t> extra;
    for (int i = 0; i < 40; ++i) {
      extra.push_back(index->InsertRow({static_cast<uint32_t>(rng() % 4),
                                        static_cast<uint32_t>(rng() % 4)}));
    }
    index->Rebuild();
    for (uint64_t row : extra) index->DeleteRow(row);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(misses.load(), 0u);
  EXPECT_EQ(index->generation(), static_cast<uint64_t>(kRebuilds));
}

TEST(MutableConcurrencyTest, AutoRebuildRacesWithWritersAndReaders) {
  // auto_rebuild on with a tight start: background rebuilds fire while
  // the writer keeps inserting and readers keep probing. Afterwards every
  // committed row must be fully probeable — no insert may be lost to a
  // racing generation swap (the delta-log replay under test).
  constexpr uint64_t kRows = 1200;
  std::vector<bitmap::AttributeInfo> attrs = {{"a", 8}, {"b", 8}};
  MutableAbIndex::Options options = SmallOptions();
  options.auto_rebuild = true;
  options.fp_budget_factor = 1.5;
  options.regrow_headroom = 2.0;
  auto index = MutableAbIndex::BuildEmpty(attrs, options, 64);

  auto bins_for = [](uint64_t row) {
    return std::vector<uint32_t>{static_cast<uint32_t>((row * 7) % 8),
                                 static_cast<uint32_t>((row * 3) % 8)};
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> false_negatives{0};
  std::thread reader([&]() {
    std::mt19937_64 rng(53);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t committed = index->num_rows();
      if (committed == 0) continue;
      uint64_t row = rng() % committed;
      std::vector<uint32_t> bins = bins_for(row);
      if (!index->TestCell(row, 0, bins[0]) ||
          !index->TestCell(row, 1, bins[1])) {
        false_negatives.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (uint64_t row = 0; row < kRows; ++row) index->InsertRow(bins_for(row));
  index->WaitForRebuild();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(false_negatives.load(), 0u);
  EXPECT_GE(index->generation(), 1u);  // drift actually fired
  for (uint64_t row = 0; row < kRows; ++row) {
    std::vector<uint32_t> bins = bins_for(row);
    ASSERT_TRUE(index->TestCell(row, 0, bins[0])) << row;
    ASSERT_TRUE(index->TestCell(row, 1, bins[1])) << row;
  }
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
