// Randomized SIMD == scalar parity for the full probe/test/insert stack.
// For every hash family, k, and filter size in the sweep, results computed
// at each forced dispatch level must be bit-identical to the forced-scalar
// baseline: ProbesBatch/ProbesBatchRange outputs, TestBatch/TestBatchMask
// verdicts, InsertBatch filter contents, the blocked filter's block probes,
// and BitVector word ops. In a -DAB_DISABLE_SIMD=ON build every level
// clamps to scalar and the sweep still runs (trivially passing), which is
// exactly the fallback contract.

#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "core/approximate_bitmap.h"
#include "core/blocked_bitmap.h"
#include "gtest/gtest.h"
#include "hash/hash_family.h"
#include "util/bitvector.h"
#include "util/simd.h"

namespace abitmap {
namespace ab {
namespace {

using util::simd::ActiveSimdLevel;
using util::simd::SetSimdLevelForTesting;
using util::simd::SimdLevel;
using util::simd::SimdLevelName;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    SetSimdLevelForTesting(level);
  }
  ~ScopedSimdLevel() { SetSimdLevelForTesting(prev_); }

 private:
  SimdLevel prev_;
};

const SimdLevel kForcedLevels[] = {SimdLevel::kScalar, SimdLevel::kSse2,
                                   SimdLevel::kAvx2, SimdLevel::kNeon};

struct FamilyCase {
  const char* label;
  std::shared_ptr<const hash::HashFamily> family;
};

std::vector<FamilyCase> AllFamilies() {
  std::vector<FamilyCase> out;
  out.push_back({"independent", hash::MakeIndependentFamily()});
  // A pool with every classic member, including the ones whose vector
  // recurrences have branches (PJW/ELF/AP) and per-lane init (DEK).
  out.push_back({"independent_all",
                 hash::MakeIndependentFamily(std::vector<hash::HashKind>{
                     hash::HashKind::kRS, hash::HashKind::kJS,
                     hash::HashKind::kPJW, hash::HashKind::kELF,
                     hash::HashKind::kBKDR, hash::HashKind::kSDBM,
                     hash::HashKind::kDJB, hash::HashKind::kDEK,
                     hash::HashKind::kAP, hash::HashKind::kFNV})});
  // Modern kinds have no vector kernel — exercises the per-round scalar
  // fallback inside the vector batch path.
  out.push_back({"independent_modern",
                 hash::MakeIndependentFamily(std::vector<hash::HashKind>{
                     hash::HashKind::kMurmur3, hash::HashKind::kXX64,
                     hash::HashKind::kFNV})});
  out.push_back({"double", hash::MakeDoubleHashFamily()});
  out.push_back({"sha1", hash::MakeSha1Family()});
  out.push_back({"circular", hash::MakeCircularFamily()});
  return out;
}

std::vector<uint64_t> RandomKeys(size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> keys(count);
  for (uint64_t& k : keys) k = rng();
  return keys;
}

std::vector<hash::CellRef> MakeCells(size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<hash::CellRef> cells(count);
  for (size_t i = 0; i < count; ++i) {
    cells[i] = hash::CellRef{rng() % 100000, static_cast<uint32_t>(rng() % 32)};
  }
  return cells;
}

TEST(SimdParityTest, ProbesBatchMatchesScalarLevel) {
  const size_t kCount = 103;  // odd, exercises lane-group tails
  std::vector<uint64_t> keys = RandomKeys(kCount, 1);
  std::vector<hash::CellRef> cells = MakeCells(kCount, 2);
  for (const FamilyCase& fc : AllFamilies()) {
    for (size_t k : {1u, 2u, 6u, 13u}) {
      for (uint64_t n : {uint64_t{1} << 10, uint64_t{1} << 16,
                         uint64_t{1} << 22}) {
        if (fc.family->name() == "sha1" && k > 10) continue;
        std::vector<uint64_t> baseline(kCount * k);
        {
          ScopedSimdLevel guard(SimdLevel::kScalar);
          fc.family->ProbesBatch(keys.data(), cells.data(), kCount, k, n,
                                 baseline.data());
        }
        for (SimdLevel level : kForcedLevels) {
          ScopedSimdLevel guard(level);
          std::vector<uint64_t> probes(kCount * k, ~uint64_t{0});
          fc.family->ProbesBatch(keys.data(), cells.data(), kCount, k, n,
                                 probes.data());
          ASSERT_EQ(probes, baseline)
              << "family=" << fc.label << " k=" << k << " n=" << n
              << " level=" << SimdLevelName(ActiveSimdLevel());
        }
        // Partial windows through ProbesBatchRange, as the round-lazy
        // membership kernel issues them.
        for (auto [begin, end] :
             {std::pair<size_t, size_t>{0, std::min<size_t>(2, k)},
              {k / 2, k},
              {k - 1, k}}) {
          size_t width = end - begin;
          if (width == 0) continue;
          std::vector<uint64_t> base_range(kCount * width);
          {
            ScopedSimdLevel guard(SimdLevel::kScalar);
            fc.family->ProbesBatchRange(keys.data(), cells.data(), kCount,
                                        begin, end, n, base_range.data());
          }
          for (SimdLevel level : kForcedLevels) {
            ScopedSimdLevel guard(level);
            std::vector<uint64_t> probes(kCount * width, ~uint64_t{0});
            fc.family->ProbesBatchRange(keys.data(), cells.data(), kCount,
                                        begin, end, n, probes.data());
            ASSERT_EQ(probes, base_range)
                << "family=" << fc.label << " k=" << k << " n=" << n
                << " range=[" << begin << "," << end << ")"
                << " level=" << SimdLevelName(ActiveSimdLevel());
          }
        }
      }
    }
  }
}

TEST(SimdParityTest, NonPowerOfTwoSizeStaysExact) {
  // The vector double-hash path requires power-of-two n and must not
  // engage otherwise; probe values still agree with scalar at every level.
  const size_t kCount = 37;
  std::vector<uint64_t> keys = RandomKeys(kCount, 11);
  std::vector<hash::CellRef> cells = MakeCells(kCount, 12);
  auto family = hash::MakeDoubleHashFamily();
  for (uint64_t n : {uint64_t{1000003}, uint64_t{12345}}) {
    std::vector<uint64_t> baseline(kCount * 6);
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      family->ProbesBatch(keys.data(), cells.data(), kCount, 6, n,
                          baseline.data());
    }
    for (SimdLevel level : kForcedLevels) {
      ScopedSimdLevel guard(level);
      std::vector<uint64_t> probes(kCount * 6, ~uint64_t{0});
      family->ProbesBatch(keys.data(), cells.data(), kCount, 6, n,
                          probes.data());
      ASSERT_EQ(probes, baseline)
          << "n=" << n << " level=" << SimdLevelName(ActiveSimdLevel());
      for (uint64_t p : probes) ASSERT_LT(p, n);
    }
  }
}

TEST(SimdParityTest, TestBatchAndInsertBatchMatchScalarLevel) {
  std::mt19937_64 rng(2025);
  for (const FamilyCase& fc : AllFamilies()) {
    for (int k : {2, 6}) {
      for (uint64_t n : {uint64_t{1} << 12, uint64_t{1} << 18}) {
        AbParams params;
        params.n_bits = n;
        params.k = k;
        const size_t kInserts = 600;
        const size_t kQueries = 500;
        std::vector<uint64_t> ins_keys = RandomKeys(kInserts, 21);
        std::vector<hash::CellRef> ins_cells = MakeCells(kInserts, 22);
        // Half the queries are members, half random.
        std::vector<uint64_t> q_keys = ins_keys;
        std::vector<hash::CellRef> q_cells = ins_cells;
        q_keys.resize(kQueries);
        q_cells.resize(kQueries);
        for (size_t i = kInserts / 2; i < kQueries; ++i) {
          q_keys[i] = rng();
          q_cells[i] =
              hash::CellRef{rng() % 100000, static_cast<uint32_t>(rng() % 32)};
        }

        // Baseline: scalar build + scalar queries.
        std::vector<uint8_t> base_bits(kQueries);
        ApproximateBitmap scalar_filter(params, fc.family);
        {
          ScopedSimdLevel guard(SimdLevel::kScalar);
          scalar_filter.InsertBatch(ins_keys.data(), ins_cells.data(),
                                    kInserts);
          scalar_filter.TestBatch(q_keys.data(), q_cells.data(), kQueries,
                                  base_bits.data());
        }

        for (SimdLevel level : kForcedLevels) {
          ScopedSimdLevel guard(level);
          ApproximateBitmap filter(params, fc.family);
          filter.InsertBatch(ins_keys.data(), ins_cells.data(), kInserts);
          ASSERT_TRUE(filter.bits() == scalar_filter.bits())
              << "InsertBatch diverged: family=" << fc.label << " k=" << k
              << " n=" << n
              << " level=" << SimdLevelName(ActiveSimdLevel());
          std::vector<uint8_t> bits(kQueries, 0xCC);
          filter.TestBatch(q_keys.data(), q_cells.data(), kQueries,
                           bits.data());
          ASSERT_EQ(bits, base_bits)
              << "TestBatch diverged: family=" << fc.label << " k=" << k
              << " n=" << n
              << " level=" << SimdLevelName(ActiveSimdLevel());
          // TestBatchMask and the scalar Test must agree lane for lane.
          uint64_t mask = filter.TestBatchMask(q_keys.data(), q_cells.data(),
                                               32);
          for (size_t i = 0; i < 32; ++i) {
            ASSERT_EQ((mask >> i) & 1, base_bits[i])
                << "TestBatchMask lane " << i << " family=" << fc.label
                << " level=" << SimdLevelName(ActiveSimdLevel());
          }
        }
      }
    }
  }
}

TEST(SimdParityTest, BlockedBitmapMatchesScalarLevel) {
  std::mt19937_64 rng(31);
  for (int k : {1, 4, 9, 16}) {
    AbParams params;
    params.n_bits = uint64_t{1} << 16;
    params.k = k;
    const size_t kInserts = 800;
    std::vector<uint64_t> ins_keys = RandomKeys(kInserts, 41 + k);
    std::vector<uint64_t> q_keys = ins_keys;
    for (size_t i = 0; i < kInserts; i += 2) q_keys[i] = rng();

    BlockedApproximateBitmap scalar_filter(params);
    std::vector<uint8_t> base_bits(kInserts);
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      // Half through Insert, half through InsertBatch.
      for (size_t i = 0; i < kInserts / 2; ++i) {
        scalar_filter.Insert(ins_keys[i]);
      }
      scalar_filter.InsertBatch(ins_keys.data() + kInserts / 2,
                                kInserts - kInserts / 2);
      scalar_filter.TestBatch(q_keys.data(), kInserts, base_bits.data());
    }

    for (SimdLevel level : kForcedLevels) {
      ScopedSimdLevel guard(level);
      BlockedApproximateBitmap filter(params);
      for (size_t i = 0; i < kInserts / 2; ++i) {
        filter.Insert(ins_keys[i]);
      }
      filter.InsertBatch(ins_keys.data() + kInserts / 2,
                         kInserts - kInserts / 2);
      std::vector<uint8_t> bits(kInserts, 0xCC);
      filter.TestBatch(q_keys.data(), kInserts, bits.data());
      ASSERT_EQ(bits, base_bits)
          << "k=" << k << " level=" << SimdLevelName(ActiveSimdLevel());
      for (size_t i = 0; i < kInserts; ++i) {
        ASSERT_EQ(filter.Test(q_keys[i]), base_bits[i] != 0)
            << "k=" << k << " i=" << i
            << " level=" << SimdLevelName(ActiveSimdLevel());
      }
      EXPECT_DOUBLE_EQ(filter.FillRatio(), scalar_filter.FillRatio());
    }
  }
}

TEST(SimdParityTest, BitVectorOpsMatchScalarLevel) {
  std::mt19937_64 rng(71);
  for (size_t bits : {63u, 64u, 1000u, 4096u, 100001u}) {
    util::BitVector a(bits);
    util::BitVector b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng() & 1) a.Set(i);
      if (rng() & 1) b.Set(i);
    }
    util::BitVector base_and, base_or, base_xor, base_andnot, base_not;
    size_t base_count, base_range;
    {
      ScopedSimdLevel guard(SimdLevel::kScalar);
      base_and = util::And(a, b);
      base_or = util::Or(a, b);
      base_xor = util::Xor(a, b);
      base_andnot = util::AndNot(a, b);
      base_not = util::Not(a);
      base_count = a.Count();
      base_range = a.CountRange(bits / 3, bits - bits / 4);
    }
    for (SimdLevel level : kForcedLevels) {
      ScopedSimdLevel guard(level);
      EXPECT_TRUE(util::And(a, b) == base_and);
      EXPECT_TRUE(util::Or(a, b) == base_or);
      EXPECT_TRUE(util::Xor(a, b) == base_xor);
      EXPECT_TRUE(util::AndNot(a, b) == base_andnot);
      EXPECT_TRUE(util::Not(a) == base_not);
      EXPECT_EQ(a.Count(), base_count);
      EXPECT_EQ(a.CountRange(bits / 3, bits - bits / 4), base_range)
          << "bits=" << bits
          << " level=" << SimdLevelName(ActiveSimdLevel());
    }
  }
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
