// Tests for the query-planning and maintenance features of AbIndex:
// selectivity-ordered evaluation, analytic precision estimation, appends
// and the rebuild advisory.

#include <random>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "data/query_gen.h"
#include "util/byte_io.h"

namespace abitmap {
namespace ab {
namespace {

bitmap::BinnedDataset SkewedDataset(uint64_t rows, uint64_t seed) {
  // Attribute 0 uniform over 20 bins, attribute 1 zipf over 20 bins:
  // selectivities differ strongly between attributes.
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "mixed", rows, 1, 20, data::Distribution::kUniform, seed);
  bitmap::BinnedDataset z = data::MakeSynthetic(
      "z", rows, 1, 20, data::Distribution::kZipf, seed + 1, 1.2);
  d.attributes.push_back(z.attributes[0]);
  d.values.push_back(z.values[0]);
  return d;
}

TEST(SelectivityOrderingTest, OrderedAndUnorderedAgree) {
  bitmap::BinnedDataset d = SkewedDataset(2000, 1);
  AbConfig ordered_cfg;
  ordered_cfg.alpha = 8;
  AbConfig unordered_cfg = ordered_cfg;
  unordered_cfg.preserve_query_order = true;
  AbIndex ordered = AbIndex::Build(d, ordered_cfg);
  AbIndex unordered = AbIndex::Build(d, unordered_cfg);

  data::QueryGenParams qp;
  qp.num_queries = 30;
  qp.rows_queried = 500;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(d, qp)) {
    EXPECT_EQ(ordered.Evaluate(q), unordered.Evaluate(q));
  }
}

TEST(SelectivityOrderingTest, HistogramsMatchData) {
  bitmap::BinnedDataset d = SkewedDataset(3000, 2);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);
  for (uint32_t a = 0; a < 2; ++a) {
    uint64_t total = 0;
    for (uint32_t b = 0; b < 20; ++b) {
      uint64_t expected = 0;
      for (uint32_t v : d.values[a]) expected += v == b;
      EXPECT_EQ(index.ColumnSetBits(a, b), expected) << a << "," << b;
      total += expected;
    }
    EXPECT_EQ(total, 3000u);
  }
}

TEST(SelectivityOrderingTest, RangeSelectivityViaPublicHistogram) {
  bitmap::BinnedDataset d = SkewedDataset(1000, 3);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);
  // The zipf attribute's first bin dominates; its histogram entry must be
  // far larger than the tail bin's.
  EXPECT_GT(index.ColumnSetBits(1, 0), index.ColumnSetBits(1, 19) * 4);
}

TEST(PrecisionEstimateTest, TracksMeasuredPrecision) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "u", 5000, 3, 12, data::Distribution::kUniform, 4);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  data::QueryGenParams qp;
  qp.num_queries = 60;
  qp.rows_queried = 1000;
  qp.seed = 5;
  std::vector<bitmap::BitmapQuery> queries = data::GenerateQueries(d, qp);

  for (double alpha : {4.0, 8.0, 16.0}) {
    AbConfig cfg;
    cfg.alpha = alpha;
    AbIndex index = AbIndex::Build(d, cfg);
    data::BatchAccuracy batch;
    double estimate_sum = 0;
    for (const bitmap::BitmapQuery& q : queries) {
      batch.Add(data::CompareResults(table.Evaluate(q), index.Evaluate(q)));
      estimate_sum += index.EstimateQueryPrecision(q);
    }
    double measured = batch.precision();
    double estimated = estimate_sum / queries.size();
    // The independence-assumption estimate must land near the measurement.
    EXPECT_NEAR(estimated, measured, 0.12)
        << "alpha=" << alpha << " measured=" << measured;
  }
}

TEST(PrecisionEstimateTest, EmptyQueryIsExact) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "u", 100, 2, 4, data::Distribution::kUniform, 6);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);
  bitmap::BitmapQuery q;
  EXPECT_EQ(index.EstimateQueryPrecision(q), 1.0);
}

TEST(PrecisionEstimateTest, MoreSelectiveQueriesEstimateLowerPrecision) {
  // Precision = true/reported: with rarer true matches the same FP floor
  // hurts more. The estimator must reflect that.
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "u", 5000, 2, 20, data::Distribution::kUniform, 7);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);
  bitmap::BitmapQuery narrow;
  narrow.ranges = {{0, 3, 3}, {1, 7, 7}};  // ~0.25% of rows
  bitmap::BitmapQuery wide;
  wide.ranges = {{0, 0, 9}, {1, 0, 9}};  // ~25% of rows
  EXPECT_LT(index.EstimateQueryPrecision(narrow),
            index.EstimateQueryPrecision(wide));
}

TEST(AppendTest, AppendedRowsAreQueryable) {
  bitmap::BinnedDataset base = data::MakeSynthetic(
      "u", 1000, 2, 8, data::Distribution::kUniform, 8);
  bitmap::BinnedDataset delta = data::MakeSynthetic(
      "u2", 300, 2, 8, data::Distribution::kUniform, 9);
  AbConfig cfg;
  cfg.alpha = 16;
  AbIndex index = AbIndex::Build(base, cfg);
  index.AppendRows(delta);
  EXPECT_EQ(index.num_rows(), 1300u);
  // Old rows unaffected, new rows present.
  for (uint64_t i = 0; i < 1000; ++i) {
    for (uint32_t a = 0; a < 2; ++a) {
      EXPECT_TRUE(index.TestCell(i, a, base.values[a][i]));
    }
  }
  for (uint64_t i = 0; i < 300; ++i) {
    for (uint32_t a = 0; a < 2; ++a) {
      EXPECT_TRUE(index.TestCell(1000 + i, a, delta.values[a][i]));
    }
  }
}

TEST(AppendTest, AppendEqualsBuildOverConcatenation) {
  // The AB is order-insensitive, so append must equal a from-scratch build
  // over the concatenated data with the same filter sizes. (Sizes are
  // fixed at build time, so compare against a build with n_bits_override.)
  bitmap::BinnedDataset base = data::MakeSynthetic(
      "u", 800, 2, 6, data::Distribution::kUniform, 10);
  bitmap::BinnedDataset delta = data::MakeSynthetic(
      "u2", 200, 2, 6, data::Distribution::kUniform, 11);
  AbConfig cfg;
  cfg.alpha = 8;
  cfg.k = 4;
  cfg.level = Level::kPerAttribute;
  AbIndex appended = AbIndex::Build(base, cfg);
  uint64_t frozen_bits = appended.filter(0).size_bits();
  appended.AppendRows(delta);

  bitmap::BinnedDataset all = base;
  for (uint32_t a = 0; a < 2; ++a) {
    all.values[a].insert(all.values[a].end(), delta.values[a].begin(),
                         delta.values[a].end());
  }
  AbConfig frozen_cfg = cfg;
  frozen_cfg.n_bits_override = frozen_bits;
  AbIndex rebuilt = AbIndex::Build(all, frozen_cfg);
  for (size_t f = 0; f < appended.num_filters(); ++f) {
    EXPECT_EQ(appended.filter(f).bits(), rebuilt.filter(f).bits()) << f;
  }
}

TEST(AppendTest, NeedsRebuildAfterHeavyAppends) {
  bitmap::BinnedDataset base = data::MakeSynthetic(
      "u", 500, 2, 8, data::Distribution::kUniform, 12);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(base, cfg);
  EXPECT_FALSE(index.NeedsRebuild());
  // Quadruple the data: expected FP rises well past 2x the as-built rate.
  for (int round = 0; round < 3; ++round) {
    index.AppendRows(data::MakeSynthetic("d", 500, 2, 8,
                                         data::Distribution::kUniform,
                                         13 + round));
  }
  EXPECT_TRUE(index.NeedsRebuild());
  EXPECT_FALSE(index.NeedsRebuild(/*fp_budget_factor=*/1000.0));
}

TEST(AppendTest, HistogramsFollowAppends) {
  bitmap::BinnedDataset base = data::MakeSynthetic(
      "u", 400, 1, 4, data::Distribution::kUniform, 14);
  bitmap::BinnedDataset delta = data::MakeSynthetic(
      "d", 100, 1, 4, data::Distribution::kUniform, 15);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(base, cfg);
  index.AppendRows(delta);
  uint64_t total = 0;
  for (uint32_t b = 0; b < 4; ++b) total += index.ColumnSetBits(0, b);
  EXPECT_EQ(total, 500u);
}

TEST(AppendTest, StatisticsSurviveSerialization) {
  bitmap::BinnedDataset d = SkewedDataset(1000, 16);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex original = AbIndex::Build(d, cfg);
  util::ByteWriter w;
  original.Serialize(&w);
  util::ByteReader r(w.bytes());
  util::StatusOr<AbIndex> back = AbIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 20; ++b) {
      EXPECT_EQ(back.value().ColumnSetBits(a, b), original.ColumnSetBits(a, b));
    }
  }
  bitmap::BitmapQuery q;
  q.ranges = {{0, 1, 3}, {1, 0, 2}};
  EXPECT_DOUBLE_EQ(back.value().EstimateQueryPrecision(q),
                   original.EstimateQueryPrecision(q));
  EXPECT_EQ(back.value().NeedsRebuild(), original.NeedsRebuild());
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
