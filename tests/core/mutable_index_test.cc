#include "core/mutable_index.h"

#include <memory>
#include <random>
#include <vector>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "data/query_gen.h"

namespace abitmap {
namespace ab {
namespace {

/// More rounds than generation slots (4), so the swap path exercises
/// slot reuse.
constexpr int kNumRebuildRounds = 6;

bitmap::BinnedDataset TestDataset(uint64_t rows, uint64_t seed) {
  return data::MakeSynthetic("t", rows, 3, 8, data::Distribution::kUniform,
                             seed);
}

std::vector<uint32_t> RowBins(const bitmap::BinnedDataset& d, uint64_t row) {
  std::vector<uint32_t> bins(d.num_attributes());
  for (uint32_t a = 0; a < d.num_attributes(); ++a) bins[a] = d.values[a][row];
  return bins;
}

/// Every live row must probe true on all of its cells — the
/// no-false-negative contract, checked exhaustively.
void ExpectNoFalseNegatives(const MutableAbIndex& index,
                            const bitmap::BinnedDataset& d,
                            const std::vector<bool>& alive) {
  for (uint64_t row = 0; row < alive.size(); ++row) {
    if (!alive[row]) continue;
    ASSERT_TRUE(index.RowLive(row)) << row;
    for (uint32_t a = 0; a < d.num_attributes(); ++a) {
      EXPECT_TRUE(index.TestCell(row, a, d.values[a][row]))
          << "false negative: row " << row << " attr " << a;
    }
  }
}

class MutableIndexLevelTest : public ::testing::TestWithParam<Level> {
 protected:
  MutableAbIndex::Options OptionsFor(double alpha) {
    MutableAbIndex::Options options;
    options.config.level = GetParam();
    options.config.alpha = alpha;
    options.auto_rebuild = false;  // deterministic unless a test opts in
    return options;
  }
};

TEST_P(MutableIndexLevelTest, BuildProbesEveryRow) {
  bitmap::BinnedDataset d = TestDataset(500, 1);
  auto index = MutableAbIndex::Build(d, OptionsFor(8));
  EXPECT_EQ(index->num_rows(), 500u);
  EXPECT_EQ(index->live_rows(), 500u);
  ExpectNoFalseNegatives(*index, d, std::vector<bool>(500, true));
}

TEST_P(MutableIndexLevelTest, InsertedRowIsImmediatelyVisible) {
  bitmap::BinnedDataset d = TestDataset(200, 2);
  auto index = MutableAbIndex::Build(d, OptionsFor(8));
  uint64_t row = index->InsertRow({1, 2, 3});
  EXPECT_EQ(row, 200u);
  EXPECT_EQ(index->num_rows(), 201u);
  EXPECT_TRUE(index->RowLive(row));
  EXPECT_TRUE(index->TestCell(row, 0, 1));
  EXPECT_TRUE(index->TestCell(row, 1, 2));
  EXPECT_TRUE(index->TestCell(row, 2, 3));

  bitmap::BitmapQuery q;
  q.ranges.push_back({0, 1, 1});
  q.ranges.push_back({1, 2, 2});
  q.ranges.push_back({2, 3, 3});
  q.rows.push_back(row);
  std::vector<bool> hit = index->Evaluate(q);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_TRUE(hit[0]);
}

TEST_P(MutableIndexLevelTest, DeleteKillsTheRowAndSparesTheRest) {
  bitmap::BinnedDataset d = TestDataset(300, 3);
  auto index = MutableAbIndex::Build(d, OptionsFor(16));
  std::vector<bool> alive(300, true);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 120; ++i) {
    uint64_t row = rng() % 300;
    bool was_alive = alive[row];
    EXPECT_EQ(index->DeleteRow(row), was_alive);
    alive[row] = false;
    EXPECT_FALSE(index->RowLive(row));
  }
  EXPECT_FALSE(index->DeleteRow(300));  // unknown id
  // Deleting other rows' cells must not create false negatives for the
  // survivors — the counting-filter invariant under test.
  ExpectNoFalseNegatives(*index, d, alive);
  // Dead rows never match a query, regardless of filter aliasing.
  bitmap::BitmapQuery q;
  q.ranges.push_back({0, 0, 7});
  std::vector<bool> hit = index->Evaluate(q);
  for (uint64_t row = 0; row < 300; ++row) {
    if (!alive[row]) EXPECT_FALSE(hit[row]) << row;
  }
}

TEST_P(MutableIndexLevelTest, EvaluateTracksMutableGroundTruth) {
  // Churn: deletes and inserts interleaved, then compare queries against
  // an exact bitmap table over the surviving relation.
  bitmap::BinnedDataset d = TestDataset(800, 4);
  auto index = MutableAbIndex::Build(d, OptionsFor(16));
  std::mt19937_64 rng(9);
  std::vector<bool> alive(800, true);
  for (int op = 0; op < 400; ++op) {
    if (rng() % 2 == 0) {
      uint64_t row = rng() % alive.size();
      if (alive[row]) {
        index->DeleteRow(row);
        alive[row] = false;
      }
    } else {
      std::vector<uint32_t> bins = {static_cast<uint32_t>(rng() % 8),
                                    static_cast<uint32_t>(rng() % 8),
                                    static_cast<uint32_t>(rng() % 8)};
      uint64_t row = index->InsertRow(bins);
      ASSERT_EQ(row, alive.size());
      for (uint32_t a = 0; a < 3; ++a) d.values[a].push_back(bins[a]);
      alive.push_back(true);
    }
  }
  bitmap::BitmapTable truth = bitmap::BitmapTable::Build(d);
  data::QueryGenParams qp;
  qp.num_queries = 20;
  qp.rows_queried = 300;
  qp.seed = 11;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(d, qp)) {
    std::vector<bool> expected = truth.Evaluate(q);
    std::vector<bool> got = index->Evaluate(q);
    ASSERT_EQ(expected.size(), got.size());
    const std::vector<uint64_t>& rows = q.rows;
    for (size_t i = 0; i < expected.size(); ++i) {
      uint64_t row = rows.empty() ? i : rows[i];
      if (!alive[row]) {
        EXPECT_FALSE(got[i]) << "dead row " << row << " matched";
      } else if (expected[i]) {
        EXPECT_TRUE(got[i]) << "false negative on live row " << row;
      }
    }
  }
}

TEST_P(MutableIndexLevelTest, RebuildPreservesAnswersAndShedsDrift) {
  bitmap::BinnedDataset d = TestDataset(400, 5);
  auto index = MutableAbIndex::Build(d, OptionsFor(8));
  std::vector<bool> alive(400, true);
  for (uint64_t row = 0; row < 400; row += 2) {
    index->DeleteRow(row);
    alive[row] = false;
  }
  double fp_before = index->WorstExpectedFp();
  index->Rebuild();
  EXPECT_EQ(index->generation(), 1u);
  EXPECT_EQ(index->live_rows(), 200u);
  // The regrown generation holds only live cells, so its expected FP at
  // the current load cannot exceed the drifted one.
  EXPECT_LE(index->WorstExpectedFp(), fp_before + 1e-12);
  ExpectNoFalseNegatives(*index, d, alive);
  // Ids survive the swap: a post-rebuild insert continues the sequence,
  // and deleted ids stay dead.
  uint64_t row = index->InsertRow({4, 4, 4});
  EXPECT_EQ(row, 400u);
  EXPECT_TRUE(index->TestCell(row, 0, 4));
  EXPECT_FALSE(index->RowLive(0));
}

INSTANTIATE_TEST_SUITE_P(Levels, MutableIndexLevelTest,
                         ::testing::Values(Level::kPerDataset,
                                           Level::kPerAttribute,
                                           Level::kPerColumn),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           switch (info.param) {
                             case Level::kPerDataset:
                               return "PerDataset";
                             case Level::kPerAttribute:
                               return "PerAttribute";
                             default:
                               return "PerColumn";
                           }
                         });

TEST(MutableIndexTest, BuildEmptyGrowsFromNothing) {
  std::vector<bitmap::AttributeInfo> attrs = {{"a", 8}, {"b", 8}, {"c", 8}};
  MutableAbIndex::Options options;
  options.config.alpha = 8;
  options.auto_rebuild = false;
  auto index = MutableAbIndex::BuildEmpty(attrs, options, 128);
  EXPECT_EQ(index->num_rows(), 0u);
  bitmap::BitmapQuery q;
  q.ranges.push_back({0, 0, 7});
  EXPECT_TRUE(index->Evaluate(q).empty());

  for (uint64_t i = 0; i < 100; ++i) {
    uint64_t row = index->InsertRow({static_cast<uint32_t>(i % 8),
                                     static_cast<uint32_t>((i / 8) % 8),
                                     static_cast<uint32_t>(i % 3)});
    EXPECT_EQ(row, i);
    EXPECT_TRUE(index->TestCell(row, 0, i % 8));
  }
  EXPECT_EQ(index->live_rows(), 100u);
}

TEST(MutableIndexTest, SaturatedCountersStaySetThroughDeletes) {
  // Force tiny filters (8 counters each) under per-dataset so hundreds of
  // cells hammer each counter far past 15. The sticky-saturation rule
  // must hold: deleting most rows may leave saturated counters at 15,
  // but must never produce a false negative for a survivor — and must
  // never trip the underflow abort.
  std::vector<bitmap::AttributeInfo> attrs = {{"a", 4}, {"b", 4}};
  MutableAbIndex::Options options;
  options.config.level = Level::kPerDataset;
  options.config.n_bits_override = 8;
  options.auto_rebuild = false;
  auto index = MutableAbIndex::BuildEmpty(attrs, options, 64);
  std::mt19937_64 rng(13);
  std::vector<std::vector<uint32_t>> bins;
  for (int i = 0; i < 400; ++i) {
    bins.push_back({static_cast<uint32_t>(rng() % 4),
                    static_cast<uint32_t>(rng() % 4)});
    index->InsertRow(bins.back());
  }
  for (uint64_t row = 0; row < 390; ++row) index->DeleteRow(row);
  for (uint64_t row = 390; row < 400; ++row) {
    EXPECT_TRUE(index->TestCell(row, 0, bins[row][0])) << row;
    EXPECT_TRUE(index->TestCell(row, 1, bins[row][1])) << row;
  }
}

TEST(MutableIndexTest, AlphaDriftTriggersAutomaticRebuild) {
  // Start tiny (sized for 64 rows) with auto-rebuild on: pushing hundreds
  // of rows through must blow the fp budget and regrow in the background.
  std::vector<bitmap::AttributeInfo> attrs = {{"a", 8}, {"b", 8}};
  MutableAbIndex::Options options;
  options.config.alpha = 8;
  options.fp_budget_factor = 2.0;
  options.regrow_headroom = 2.0;
  options.auto_rebuild = true;
  auto index = MutableAbIndex::BuildEmpty(attrs, options, 64);
  double design_fp = index->DesignFp();
  ASSERT_GT(design_fp, 0);

  std::mt19937_64 rng(17);
  std::vector<std::vector<uint32_t>> bins;
  for (int i = 0; i < 2000; ++i) {
    bins.push_back({static_cast<uint32_t>(rng() % 8),
                    static_cast<uint32_t>(rng() % 8)});
    index->InsertRow(bins.back());
  }
  index->WaitForRebuild();
  EXPECT_GE(index->generation(), 1u);
  // The regrown generation honours the budget at its new design point:
  // worst live FP is back under budget relative to the *new* design.
  EXPECT_FALSE(index->NeedsRebuild());
  // Every row survived every swap.
  for (uint64_t row = 0; row < 2000; ++row) {
    ASSERT_TRUE(index->TestCell(row, 0, bins[row][0])) << row;
    ASSERT_TRUE(index->TestCell(row, 1, bins[row][1])) << row;
  }
}

TEST(MutableIndexTest, FilterStatsTrackEffectiveAlpha) {
  bitmap::BinnedDataset d = TestDataset(256, 19);
  MutableAbIndex::Options options;
  options.config.level = Level::kPerAttribute;
  options.config.alpha = 8;
  options.auto_rebuild = false;
  auto index = MutableAbIndex::Build(d, options);

  std::vector<MutableAbIndex::FilterStats> stats = index->FilterStatsSnapshot();
  ASSERT_EQ(stats.size(), 3u);  // one filter per attribute
  for (const auto& s : stats) {
    EXPECT_EQ(s.live, 256u);  // one cell per row per attribute
    EXPECT_GT(s.num_counters, 0u);
    EXPECT_GT(s.k, 0);
  }
  // Deletes shrink the live counts — the effective α the drift budget
  // prices — and with them the worst expected FP.
  double fp_full = index->WorstExpectedFp();
  for (uint64_t row = 0; row < 128; ++row) index->DeleteRow(row);
  stats = index->FilterStatsSnapshot();
  for (const auto& s : stats) EXPECT_EQ(s.live, 128u);
  EXPECT_LT(index->WorstExpectedFp(), fp_full);
}

TEST(MutableIndexTest, ExplicitRebuildIsIdempotentUnderRepetition) {
  bitmap::BinnedDataset d = TestDataset(150, 23);
  MutableAbIndex::Options options;
  options.config.alpha = 8;
  options.auto_rebuild = false;
  auto index = MutableAbIndex::Build(d, options);
  std::vector<bool> alive(150, true);
  for (int round = 0; round < kNumRebuildRounds; ++round) {
    index->DeleteRow(static_cast<uint64_t>(round));
    alive[static_cast<size_t>(round)] = false;
    index->Rebuild();
    ExpectNoFalseNegatives(*index, d, alive);
  }
  EXPECT_EQ(index->generation(), static_cast<uint64_t>(kNumRebuildRounds));
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
