// Correctness contract of the parallel, batch-hashed build pipeline: every
// insert-side kernel (InsertBatch, InsertBatchAtomic, UnionWith over
// shards, pool-parallel index builds, pool-parallel WAH/BBC column
// compression) must produce results bit-identical to the serial scalar
// path. Parallel construction is a wall-clock change, never a semantic
// one — the filters are pure unions of per-cell bit sets and OR commutes.

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"

#include "bbc/bbc_vector.h"
#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "core/approximate_bitmap.h"
#include "core/blocked_bitmap.h"
#include "core/counting_index.h"
#include "data/generators.h"
#include "hash/hash_family.h"
#include "util/thread_pool.h"
#include "wah/wah_query.h"

namespace abitmap {
namespace ab {
namespace {

struct CellBatch {
  std::vector<uint64_t> keys;
  std::vector<hash::CellRef> cells;
};

CellBatch RandomCells(size_t count, uint64_t seed) {
  CellBatch batch;
  std::mt19937_64 rng(seed);
  batch.keys.reserve(count);
  batch.cells.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.keys.push_back(rng());
    batch.cells.push_back(
        hash::CellRef{rng() % 50000, static_cast<uint32_t>(rng() % 16)});
  }
  return batch;
}

ApproximateBitmap MakeFilter(uint64_t n_bits, int k) {
  AbParams params;
  params.n_bits = n_bits;
  params.k = k;
  return ApproximateBitmap(params, hash::MakeIndependentFamily());
}

TEST(InsertBatchTest, MatchesScalarInsertBitForBit) {
  // Counts straddling window boundaries: empty, sub-window, exact
  // windows, and a ragged tail.
  for (size_t count : {size_t{0}, size_t{1}, size_t{31}, size_t{32},
                       size_t{64}, size_t{507}}) {
    CellBatch batch = RandomCells(count, 42 + count);
    ApproximateBitmap scalar = MakeFilter(1 << 14, 5);
    ApproximateBitmap batched = scalar.EmptyClone();
    for (size_t i = 0; i < count; ++i) {
      scalar.Insert(batch.keys[i], batch.cells[i]);
    }
    batched.InsertBatch(batch.keys.data(), batch.cells.data(), count);
    ASSERT_EQ(scalar.bits(), batched.bits()) << "count " << count;
    ASSERT_EQ(scalar.insertions(), batched.insertions());
    ASSERT_EQ(scalar.insertions(), count);
  }
}

TEST(InsertBatchTest, AtomicVariantMatchesScalarSerially) {
  CellBatch batch = RandomCells(700, 7);
  ApproximateBitmap scalar = MakeFilter(1 << 13, 4);
  ApproximateBitmap atomic = scalar.EmptyClone();
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    scalar.Insert(batch.keys[i], batch.cells[i]);
  }
  atomic.InsertBatchAtomic(batch.keys.data(), batch.cells.data(),
                           batch.keys.size());
  EXPECT_EQ(scalar.bits(), atomic.bits());
  EXPECT_EQ(scalar.insertions(), atomic.insertions());
}

TEST(InsertBatchTest, ConcurrentAtomicInsertsEqualSerialInsert) {
  // Many workers hammer one shared filter through the atomic batch path;
  // after joining, the bits must equal a serial build over the same cells
  // regardless of interleaving. Run twice to expose nondeterminism.
  CellBatch batch = RandomCells(4096, 11);
  ApproximateBitmap serial = MakeFilter(1 << 15, 6);
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
  }
  util::ThreadPool pool(8);
  for (int run = 0; run < 2; ++run) {
    ApproximateBitmap shared = serial.EmptyClone();
    pool.ParallelFor(0, batch.keys.size(),
                     [&](uint64_t begin, uint64_t end, int /*chunk*/) {
                       shared.InsertBatchAtomic(batch.keys.data() + begin,
                                                batch.cells.data() + begin,
                                                end - begin);
                     });
    ASSERT_EQ(serial.bits(), shared.bits()) << "run " << run;
    ASSERT_EQ(serial.insertions(), shared.insertions());
  }
}

TEST(UnionWithTest, ShardUnionEqualsSerialInsert) {
  CellBatch batch = RandomCells(1500, 23);
  ApproximateBitmap serial = MakeFilter(1 << 14, 5);
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
  }
  // Three uneven shards built independently, then merged.
  ApproximateBitmap merged = serial.EmptyClone();
  size_t bounds[] = {0, 100, 900, batch.keys.size()};
  for (int s = 0; s < 3; ++s) {
    ApproximateBitmap shard = serial.EmptyClone();
    shard.InsertBatch(batch.keys.data() + bounds[s],
                      batch.cells.data() + bounds[s],
                      bounds[s + 1] - bounds[s]);
    merged.UnionWith(shard);
  }
  EXPECT_EQ(serial.bits(), merged.bits());
  // Insertion counts add across the union, so the FP estimate — which
  // depends only on (n, k, insertions) — is invariant under sharding.
  EXPECT_EQ(serial.insertions(), merged.insertions());
  EXPECT_DOUBLE_EQ(serial.ExpectedFalsePositiveRate(),
                   merged.ExpectedFalsePositiveRate());
}

TEST(UnionWithTest, EmptyCloneSharesShapeAndFamily) {
  ApproximateBitmap filter = MakeFilter(1 << 10, 7);
  filter.Insert(123, hash::CellRef{1, 2});
  ApproximateBitmap clone = filter.EmptyClone();
  EXPECT_EQ(clone.size_bits(), filter.size_bits());
  EXPECT_EQ(clone.k(), filter.k());
  EXPECT_EQ(&clone.family(), &filter.family());
  EXPECT_EQ(clone.insertions(), 0u);
  EXPECT_EQ(clone.FillRatio(), 0.0);
}

TEST(BlockedInsertBatchTest, MatchesScalarInsert) {
  AbParams params;
  params.n_bits = 1 << 13;
  params.k = 5;
  std::mt19937_64 rng(3);
  std::vector<uint64_t> keys(777);
  for (uint64_t& k : keys) k = rng();
  BlockedApproximateBitmap scalar(params);
  BlockedApproximateBitmap batched(params);
  for (uint64_t k : keys) scalar.Insert(k);
  batched.InsertBatch(keys.data(), keys.size());
  ASSERT_EQ(scalar.insertions(), batched.insertions());
  // The classes expose no raw words; equality of every key's membership
  // plus equal fill ratio pins the bit arrays for practical purposes.
  EXPECT_DOUBLE_EQ(scalar.FillRatio(), batched.FillRatio());
  std::mt19937_64 probe_rng(4);
  for (int i = 0; i < 4000; ++i) {
    uint64_t k = probe_rng();
    ASSERT_EQ(scalar.Test(k), batched.Test(k)) << "probe " << i;
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(batched.Test(k));  // no false negatives
  }
}

TEST(BlockedBitmapTest, EffectiveAlphaReflectsBlockRounding) {
  // 1000 requested bits round up to 1024 (two 512-bit blocks): the
  // realized alpha grows by the same factor and FP predictions must be
  // computed over size_bits(), not the requested n_bits.
  AbParams params;
  params.n_bits = 1000;
  params.alpha = 8.0;
  params.k = 5;
  BlockedApproximateBitmap filter(params);
  EXPECT_EQ(filter.size_bits(), 1024u);
  EXPECT_EQ(filter.size_bits() % BlockedApproximateBitmap::kBlockBits, 0u);
  EXPECT_DOUBLE_EQ(filter.effective_alpha(), 8.0 * 1024.0 / 1000.0);
  EXPECT_GE(filter.effective_alpha(), params.alpha);
  // The measured-state FP estimate uses the rounded size.
  for (uint64_t key = 0; key < 125; ++key) filter.Insert(key * 2654435761u);
  EXPECT_DOUBLE_EQ(
      filter.ExpectedFalsePositiveRate(),
      FalsePositiveRateExact(filter.size_bits(), filter.insertions(),
                             filter.k()));
  // Already-aligned sizes keep their requested alpha exactly; ForAlpha
  // produces power-of-two sizes, block-aligned whenever >= one block.
  AbParams aligned = AbParams::ForAlpha(8.0, 5, 128);  // n_bits = 1024
  ASSERT_EQ(aligned.n_bits, 1024u);
  BlockedApproximateBitmap exact(aligned);
  EXPECT_DOUBLE_EQ(exact.effective_alpha(), aligned.alpha);
}

TEST(ParallelBuildTest, StableAcrossThreadCountsAndRepeatedRuns) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "det", 3000, 3, 8, data::Distribution::kZipf, 5);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 8;
    AbIndex reference = AbIndex::Build(d, cfg);
    for (int threads : {1, 2, 8}) {
      for (int run = 0; run < 2; ++run) {
        AbIndex parallel = AbIndex::BuildParallel(d, cfg, threads);
        ASSERT_EQ(reference.num_filters(), parallel.num_filters());
        for (size_t f = 0; f < reference.num_filters(); ++f) {
          ASSERT_EQ(reference.filter(f).bits(), parallel.filter(f).bits())
              << LevelName(level) << " threads=" << threads << " run=" << run
              << " filter " << f;
          ASSERT_EQ(reference.filter(f).insertions(),
                    parallel.filter(f).insertions());
        }
      }
    }
    // The pool-reusing overload follows the same contract.
    util::ThreadPool pool(4);
    AbIndex pooled = AbIndex::BuildParallel(d, cfg, &pool);
    for (size_t f = 0; f < reference.num_filters(); ++f) {
      ASSERT_EQ(reference.filter(f).bits(), pooled.filter(f).bits())
          << LevelName(level) << " pooled filter " << f;
    }
  }
}

TEST(ParallelBuildTest, CountingIndexParallelMatchesSerialCounters) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "cnt", 2000, 4, 6, data::Distribution::kUniform, 17);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 8;
    CountingAbIndex serial = CountingAbIndex::Build(d, cfg);
    CountingAbIndex parallel = CountingAbIndex::Build(d, cfg, 4);
    ASSERT_EQ(serial.num_filters(), parallel.num_filters());
    for (size_t f = 0; f < serial.num_filters(); ++f) {
      ASSERT_EQ(serial.filter(f).raw_counters(),
                parallel.filter(f).raw_counters())
          << LevelName(level) << " filter " << f;
    }
  }
}

TEST(ParallelBuildTest, WahPoolBuildIsByteIdenticalToSerial) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "wah", 2500, 3, 10, data::Distribution::kZipf, 29);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  wah::WahIndex serial = wah::WahIndex::Build(table);
  util::ThreadPool pool(4);
  wah::WahIndex parallel = wah::WahIndex::Build(table, &pool);
  ASSERT_EQ(serial.num_columns(), parallel.num_columns());
  for (uint32_t j = 0; j < serial.num_columns(); ++j) {
    ASSERT_EQ(serial.column(j), parallel.column(j)) << "column " << j;
  }
  // Null / single-threaded pools take the serial path.
  wah::WahIndex fallback = wah::WahIndex::Build(table, nullptr);
  for (uint32_t j = 0; j < serial.num_columns(); ++j) {
    ASSERT_EQ(serial.column(j), fallback.column(j));
  }
}

TEST(ParallelBuildTest, BbcParallelColumnsMatchSerialCompress) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "bbc", 1500, 2, 12, data::Distribution::kZipf, 41);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  std::vector<const util::BitVector*> columns;
  for (uint32_t j = 0; j < table.num_columns(); ++j) {
    columns.push_back(&table.column(j));
  }
  util::ThreadPool pool(4);
  std::vector<bbc::BbcVector> parallel =
      bbc::CompressColumnsParallel(columns, &pool);
  std::vector<bbc::BbcVector> fallback =
      bbc::CompressColumnsParallel(columns, nullptr);
  ASSERT_EQ(parallel.size(), columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    bbc::BbcVector serial = bbc::BbcVector::Compress(*columns[j]);
    ASSERT_TRUE(serial == parallel[j]) << "column " << j;
    ASSERT_TRUE(serial == fallback[j]) << "column " << j;
  }
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
