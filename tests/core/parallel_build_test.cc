// Correctness contract of the parallel, batch-hashed build pipeline: every
// insert-side kernel (InsertBatch, InsertBatchAtomic, UnionWith over
// shards, pool-parallel index builds, pool-parallel WAH/BBC column
// compression) must produce results bit-identical to the serial scalar
// path. Parallel construction is a wall-clock change, never a semantic
// one — the filters are pure unions of per-cell bit sets and OR commutes.

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"

#include "bbc/bbc_vector.h"
#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "core/approximate_bitmap.h"
#include "core/blocked_bitmap.h"
#include "core/counting_index.h"
#include "data/generators.h"
#include "hash/hash_family.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "wah/wah_query.h"

namespace abitmap {
namespace ab {
namespace {

struct CellBatch {
  std::vector<uint64_t> keys;
  std::vector<hash::CellRef> cells;
};

CellBatch RandomCells(size_t count, uint64_t seed) {
  CellBatch batch;
  std::mt19937_64 rng(seed);
  batch.keys.reserve(count);
  batch.cells.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.keys.push_back(rng());
    batch.cells.push_back(
        hash::CellRef{rng() % 50000, static_cast<uint32_t>(rng() % 16)});
  }
  return batch;
}

ApproximateBitmap MakeFilter(uint64_t n_bits, int k) {
  AbParams params;
  params.n_bits = n_bits;
  params.k = k;
  return ApproximateBitmap(params, hash::MakeIndependentFamily());
}

TEST(InsertBatchTest, MatchesScalarInsertBitForBit) {
  // Counts straddling window boundaries: empty, sub-window, exact
  // windows, and a ragged tail.
  for (size_t count : {size_t{0}, size_t{1}, size_t{31}, size_t{32},
                       size_t{64}, size_t{507}}) {
    CellBatch batch = RandomCells(count, 42 + count);
    ApproximateBitmap scalar = MakeFilter(1 << 14, 5);
    ApproximateBitmap batched = scalar.EmptyClone();
    for (size_t i = 0; i < count; ++i) {
      scalar.Insert(batch.keys[i], batch.cells[i]);
    }
    batched.InsertBatch(batch.keys.data(), batch.cells.data(), count);
    ASSERT_EQ(scalar.bits(), batched.bits()) << "count " << count;
    ASSERT_EQ(scalar.insertions(), batched.insertions());
    ASSERT_EQ(scalar.insertions(), count);
  }
}

TEST(InsertBatchTest, AtomicVariantMatchesScalarSerially) {
  CellBatch batch = RandomCells(700, 7);
  ApproximateBitmap scalar = MakeFilter(1 << 13, 4);
  ApproximateBitmap atomic = scalar.EmptyClone();
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    scalar.Insert(batch.keys[i], batch.cells[i]);
  }
  atomic.InsertBatchAtomic(batch.keys.data(), batch.cells.data(),
                           batch.keys.size());
  EXPECT_EQ(scalar.bits(), atomic.bits());
  EXPECT_EQ(scalar.insertions(), atomic.insertions());
}

TEST(InsertBatchTest, ConcurrentAtomicInsertsEqualSerialInsert) {
  // Many workers hammer one shared filter through the atomic batch path;
  // after joining, the bits must equal a serial build over the same cells
  // regardless of interleaving. Run twice to expose nondeterminism.
  CellBatch batch = RandomCells(4096, 11);
  ApproximateBitmap serial = MakeFilter(1 << 15, 6);
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
  }
  util::ThreadPool pool(8);
  for (int run = 0; run < 2; ++run) {
    ApproximateBitmap shared = serial.EmptyClone();
    pool.ParallelFor(0, batch.keys.size(),
                     [&](uint64_t begin, uint64_t end, int /*chunk*/) {
                       shared.InsertBatchAtomic(batch.keys.data() + begin,
                                                batch.cells.data() + begin,
                                                end - begin);
                     });
    ASSERT_EQ(serial.bits(), shared.bits()) << "run " << run;
    ASSERT_EQ(serial.insertions(), shared.insertions());
  }
}

TEST(UnionWithTest, ShardUnionEqualsSerialInsert) {
  CellBatch batch = RandomCells(1500, 23);
  ApproximateBitmap serial = MakeFilter(1 << 14, 5);
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
  }
  // Three uneven shards built independently, then merged.
  ApproximateBitmap merged = serial.EmptyClone();
  size_t bounds[] = {0, 100, 900, batch.keys.size()};
  for (int s = 0; s < 3; ++s) {
    ApproximateBitmap shard = serial.EmptyClone();
    shard.InsertBatch(batch.keys.data() + bounds[s],
                      batch.cells.data() + bounds[s],
                      bounds[s + 1] - bounds[s]);
    merged.UnionWith(shard);
  }
  EXPECT_EQ(serial.bits(), merged.bits());
  // Insertion counts add across the union, so the FP estimate — which
  // depends only on (n, k, insertions) — is invariant under sharding.
  EXPECT_EQ(serial.insertions(), merged.insertions());
  EXPECT_DOUBLE_EQ(serial.ExpectedFalsePositiveRate(),
                   merged.ExpectedFalsePositiveRate());
}

TEST(UnionWithTest, EmptyCloneSharesShapeAndFamily) {
  ApproximateBitmap filter = MakeFilter(1 << 10, 7);
  filter.Insert(123, hash::CellRef{1, 2});
  ApproximateBitmap clone = filter.EmptyClone();
  EXPECT_EQ(clone.size_bits(), filter.size_bits());
  EXPECT_EQ(clone.k(), filter.k());
  EXPECT_EQ(&clone.family(), &filter.family());
  EXPECT_EQ(clone.insertions(), 0u);
  EXPECT_EQ(clone.FillRatio(), 0.0);
}

TEST(BlockedInsertBatchTest, MatchesScalarInsert) {
  AbParams params;
  params.n_bits = 1 << 13;
  params.k = 5;
  std::mt19937_64 rng(3);
  std::vector<uint64_t> keys(777);
  for (uint64_t& k : keys) k = rng();
  BlockedApproximateBitmap scalar(params);
  BlockedApproximateBitmap batched(params);
  for (uint64_t k : keys) scalar.Insert(k);
  batched.InsertBatch(keys.data(), keys.size());
  ASSERT_EQ(scalar.insertions(), batched.insertions());
  // The classes expose no raw words; equality of every key's membership
  // plus equal fill ratio pins the bit arrays for practical purposes.
  EXPECT_DOUBLE_EQ(scalar.FillRatio(), batched.FillRatio());
  std::mt19937_64 probe_rng(4);
  for (int i = 0; i < 4000; ++i) {
    uint64_t k = probe_rng();
    ASSERT_EQ(scalar.Test(k), batched.Test(k)) << "probe " << i;
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(batched.Test(k));  // no false negatives
  }
}

TEST(BlockedBitmapTest, EffectiveAlphaReflectsBlockRounding) {
  // 1000 requested bits round up to 1024 (two 512-bit blocks): the
  // realized alpha grows by the same factor and FP predictions must be
  // computed over size_bits(), not the requested n_bits.
  AbParams params;
  params.n_bits = 1000;
  params.alpha = 8.0;
  params.k = 5;
  BlockedApproximateBitmap filter(params);
  EXPECT_EQ(filter.size_bits(), 1024u);
  EXPECT_EQ(filter.size_bits() % BlockedApproximateBitmap::kBlockBits, 0u);
  EXPECT_DOUBLE_EQ(filter.effective_alpha(), 8.0 * 1024.0 / 1000.0);
  EXPECT_GE(filter.effective_alpha(), params.alpha);
  // The measured-state FP estimate uses the rounded size.
  for (uint64_t key = 0; key < 125; ++key) filter.Insert(key * 2654435761u);
  EXPECT_DOUBLE_EQ(
      filter.ExpectedFalsePositiveRate(),
      FalsePositiveRateExact(filter.size_bits(), filter.insertions(),
                             filter.k()));
  // Already-aligned sizes keep their requested alpha exactly; ForAlpha
  // produces power-of-two sizes, block-aligned whenever >= one block.
  AbParams aligned = AbParams::ForAlpha(8.0, 5, 128);  // n_bits = 1024
  ASSERT_EQ(aligned.n_bits, 1024u);
  BlockedApproximateBitmap exact(aligned);
  EXPECT_DOUBLE_EQ(exact.effective_alpha(), aligned.alpha);
}

TEST(ParallelBuildTest, StableAcrossThreadCountsAndRepeatedRuns) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "det", 3000, 3, 8, data::Distribution::kZipf, 5);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 8;
    AbIndex reference = AbIndex::Build(d, cfg);
    for (int threads : {1, 2, 8}) {
      // The pool overload takes the worker count as given (the
      // num_threads overload clamps to hardware concurrency, which
      // would silently serialize this sweep on small CI hosts).
      util::ThreadPool tpool(threads);
      for (int run = 0; run < 2; ++run) {
        AbIndex parallel = AbIndex::BuildParallel(d, cfg, &tpool);
        ASSERT_EQ(reference.num_filters(), parallel.num_filters());
        for (size_t f = 0; f < reference.num_filters(); ++f) {
          ASSERT_EQ(reference.filter(f).bits(), parallel.filter(f).bits())
              << LevelName(level) << " threads=" << threads << " run=" << run
              << " filter " << f;
          ASSERT_EQ(reference.filter(f).insertions(),
                    parallel.filter(f).insertions());
        }
      }
    }
    // The pool-reusing overload follows the same contract.
    util::ThreadPool pool(4);
    AbIndex pooled = AbIndex::BuildParallel(d, cfg, &pool);
    for (size_t f = 0; f < reference.num_filters(); ++f) {
      ASSERT_EQ(reference.filter(f).bits(), pooled.filter(f).bits())
          << LevelName(level) << " pooled filter " << f;
    }
  }
}

TEST(ParallelBuildTest, CountingIndexParallelMatchesSerialCounters) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "cnt", 2000, 4, 6, data::Distribution::kUniform, 17);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 8;
    CountingAbIndex serial = CountingAbIndex::Build(d, cfg);
    CountingAbIndex parallel = CountingAbIndex::Build(d, cfg, 4);
    ASSERT_EQ(serial.num_filters(), parallel.num_filters());
    for (size_t f = 0; f < serial.num_filters(); ++f) {
      ASSERT_EQ(serial.filter(f).raw_counters(),
                parallel.filter(f).raw_counters())
          << LevelName(level) << " filter " << f;
    }
  }
}

TEST(ParallelBuildTest, WahPoolBuildIsByteIdenticalToSerial) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "wah", 2500, 3, 10, data::Distribution::kZipf, 29);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  wah::WahIndex serial = wah::WahIndex::Build(table);
  util::ThreadPool pool(4);
  wah::WahIndex parallel = wah::WahIndex::Build(table, &pool);
  ASSERT_EQ(serial.num_columns(), parallel.num_columns());
  for (uint32_t j = 0; j < serial.num_columns(); ++j) {
    ASSERT_EQ(serial.column(j), parallel.column(j)) << "column " << j;
  }
  // Null / single-threaded pools take the serial path.
  wah::WahIndex fallback = wah::WahIndex::Build(table, nullptr);
  for (uint32_t j = 0; j < serial.num_columns(); ++j) {
    ASSERT_EQ(serial.column(j), fallback.column(j));
  }
}

TEST(ParallelBuildTest, BbcParallelColumnsMatchSerialCompress) {
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "bbc", 1500, 2, 12, data::Distribution::kZipf, 41);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  std::vector<const util::BitVector*> columns;
  for (uint32_t j = 0; j < table.num_columns(); ++j) {
    columns.push_back(&table.column(j));
  }
  util::ThreadPool pool(4);
  std::vector<bbc::BbcVector> parallel =
      bbc::CompressColumnsParallel(columns, &pool);
  std::vector<bbc::BbcVector> fallback =
      bbc::CompressColumnsParallel(columns, nullptr);
  ASSERT_EQ(parallel.size(), columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    bbc::BbcVector serial = bbc::BbcVector::Compress(*columns[j]);
    ASSERT_TRUE(serial == parallel[j]) << "column " << j;
    ASSERT_TRUE(serial == fallback[j]) << "column " << j;
  }
}

// ---------------------------------------------------------------------
// Contention-free build strategies (partition-owner, private-shard
// ranged merge, attribute-owner) and the strategy selector.
// ---------------------------------------------------------------------

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(util::simd::SimdLevel level)
      : prev_(util::simd::ActiveSimdLevel()) {
    util::simd::SetSimdLevelForTesting(level);
  }
  ~ScopedSimdLevel() { util::simd::SetSimdLevelForTesting(prev_); }

 private:
  util::simd::SimdLevel prev_;
};

const util::simd::SimdLevel kForcedLevels[] = {
    util::simd::SimdLevel::kScalar, util::simd::SimdLevel::kSse2,
    util::simd::SimdLevel::kAvx2, util::simd::SimdLevel::kNeon};

TEST(BuildStrategyTest, SelectorRespectsSizeLevelAndThreads) {
  bitmap::BinnedDataset big = data::MakeSynthetic(
      "big", 20000, 4, 8, data::Distribution::kUniform, 3);
  bitmap::BinnedDataset tiny = data::MakeSynthetic(
      "tiny", 100, 2, 4, data::Distribution::kUniform, 5);
  AbConfig cfg;
  cfg.alpha = 8;

  // One thread (or no work) is always serial, whatever is forced.
  cfg.build_strategy = BuildStrategy::kPartitionOwner;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 1),
            BuildStrategy::kSerial);
  cfg.build_strategy = BuildStrategy::kAuto;
  // Below the cell floor the fan-out costs more than the inserts.
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(tiny, cfg, 8),
            BuildStrategy::kSerial);

  // Per-attribute with d >= threads: one owner per filter, no merge.
  cfg.level = Level::kPerAttribute;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 4),
            BuildStrategy::kAttributeOwner);
  // More threads than attributes: filter size decides. A forced override
  // keeps the filters small/large deterministically.
  cfg.n_bits_override = uint64_t{1} << 16;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 8),
            BuildStrategy::kPrivateShards);
  cfg.n_bits_override = uint64_t{1} << 23;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 8),
            BuildStrategy::kPartitionOwner);
  cfg.n_bits_override = 0;

  // Per-column routes per cell, so ownership must be per attribute.
  cfg.level = Level::kPerColumn;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 4),
            BuildStrategy::kAttributeOwner);

  // Forced strategies a level cannot express downgrade predictably.
  cfg.level = Level::kPerDataset;
  cfg.build_strategy = BuildStrategy::kAttributeOwner;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 4),
            BuildStrategy::kPrivateShards);
  cfg.level = Level::kPerColumn;
  cfg.build_strategy = BuildStrategy::kPartitionOwner;
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(big, cfg, 4),
            BuildStrategy::kAttributeOwner);
  bitmap::BinnedDataset one_attr = data::MakeSynthetic(
      "one", 20000, 1, 8, data::Distribution::kUniform, 9);
  EXPECT_EQ(AbIndex::ChooseBuildStrategy(one_attr, cfg, 4),
            BuildStrategy::kAtomicShared);
}

TEST(ParallelBuildTest, ForcedStrategiesBitIdenticalAcrossLevelsAndSimd) {
  // Every strategy x index level x thread count x forced SIMD dispatch
  // level must reproduce the serial build bit for bit. The reference is
  // built once per level at the default dispatch level; SIMD parity
  // makes the comparison meaningful across the forced levels.
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "strat", 3000, 3, 8, data::Distribution::kZipf, 77);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 8;
    AbIndex reference = AbIndex::Build(d, cfg);
    for (BuildStrategy strategy :
         {BuildStrategy::kAtomicShared, BuildStrategy::kPrivateShards,
          BuildStrategy::kPartitionOwner, BuildStrategy::kAttributeOwner}) {
      cfg.build_strategy = strategy;
      for (int threads : {2, 8}) {
        util::ThreadPool tpool(threads);
        for (util::simd::SimdLevel forced : kForcedLevels) {
          ScopedSimdLevel scoped(forced);
          AbIndex parallel = AbIndex::BuildParallel(d, cfg, &tpool);
          ASSERT_EQ(reference.num_filters(), parallel.num_filters());
          for (size_t f = 0; f < reference.num_filters(); ++f) {
            ASSERT_EQ(reference.filter(f).bits(), parallel.filter(f).bits())
                << LevelName(level) << " strategy "
                << BuildStrategyName(strategy) << " threads=" << threads
                << " simd=" << util::simd::SimdLevelName(forced)
                << " filter " << f;
            ASSERT_EQ(reference.filter(f).insertions(),
                      parallel.filter(f).insertions());
          }
        }
      }
    }
  }
}

TEST(ParallelBuildTest, PartitionOwnerSpillRingHammer) {
  // TSan target: a 2-slot spill capacity forces constant ring traffic
  // *and* the overflow fallback while 8 workers hammer the inserter.
  // The result must still equal serial insertion of the same cells, and
  // the probe-routing accounting must add up exactly.
  constexpr size_t kCount = 50000;
  CellBatch batch = RandomCells(kCount, 99);
  ApproximateBitmap serial = MakeFilter(uint64_t{1} << 20, 6);
  for (size_t i = 0; i < kCount; ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
  }
  util::ThreadPool pool(8);
  int shards = util::ThreadPool::NumChunksFor(8, kCount);
  for (int run = 0; run < 2; ++run) {
    ApproximateBitmap target = serial.EmptyClone();
    ApproximateBitmap::PartitionedInserter inserter(&target, shards,
                                                    /*spill_capacity=*/2);
    pool.ParallelFor(0, kCount, [&](uint64_t begin, uint64_t end, int chunk) {
      inserter.InsertBatch(chunk, batch.keys.data() + begin,
                           batch.cells.data() + begin, end - begin);
    });
    pool.ParallelFor(0, static_cast<uint64_t>(shards),
                     [&](uint64_t sb, uint64_t se, int) {
                       for (uint64_t s = sb; s < se; ++s) {
                         inserter.Drain(static_cast<int>(s));
                       }
                     });
    inserter.Finish();
    ASSERT_EQ(serial.bits(), target.bits()) << "run " << run;
    ASSERT_EQ(serial.insertions(), target.insertions());
    // Every probe was either committed locally or spilled; overflow is a
    // subset of spills. With 8 owners, ~7/8 of probes spill; with 2-slot
    // rings, overflow must actually trigger for the test to mean much.
    EXPECT_EQ(inserter.local_probes() + inserter.spilled_probes(),
              kCount * static_cast<uint64_t>(serial.k()));
    EXPECT_GT(inserter.spilled_probes(), 0u);
    EXPECT_GT(inserter.overflow_probes(), 0u);
    EXPECT_LE(inserter.overflow_probes(), inserter.spilled_probes());
  }
}

TEST(BuildShardTest, RangedMergeEqualsSerialAndSkipsCleanGranules) {
  // A sparse shard (100 probes into a 65536-word filter) leaves most
  // merge granules untouched; the ranged merge must OR exactly the dirty
  // ones and still reproduce serial insertion bit for bit.
  constexpr size_t kCount = 20;
  CellBatch batch = RandomCells(kCount, 1234);
  ApproximateBitmap serial = MakeFilter(uint64_t{1} << 22, 5);
  for (size_t i = 0; i < kCount; ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
  }
  ApproximateBitmap::BuildShard shard(serial);
  shard.InsertBatch(batch.keys.data(), batch.cells.data(), kCount);
  EXPECT_EQ(shard.insertions(), kCount);

  size_t num_words = serial.bits().words().size();
  // Whole-range merge: far fewer words ORed than the filter holds.
  ApproximateBitmap whole = serial.EmptyClone();
  uint64_t merged = whole.MergeShardRange(shard, 0, num_words);
  whole.AbsorbShardCount(shard);
  EXPECT_EQ(serial.bits(), whole.bits());
  EXPECT_EQ(serial.insertions(), whole.insertions());
  EXPECT_GT(merged, 0u);
  EXPECT_LE(merged, kCount * 5 * ApproximateBitmap::kMergeGranuleWords);
  EXPECT_LT(merged, num_words / 4);

  // The same merge split into three disjoint ranges (as the parallel
  // ranged merge issues them) produces the identical filter.
  ApproximateBitmap split = serial.EmptyClone();
  uint64_t merged_split = 0;
  size_t bounds[] = {0, num_words / 3, num_words / 2, num_words};
  for (int r = 0; r < 3; ++r) {
    merged_split += split.MergeShardRange(shard, bounds[r], bounds[r + 1]);
  }
  split.AbsorbShardCount(shard);
  EXPECT_EQ(serial.bits(), split.bits());
  EXPECT_EQ(merged, merged_split);

  // A range the shard never touched merges zero words.
  ApproximateBitmap empty_target = serial.EmptyClone();
  ApproximateBitmap::BuildShard clean(serial);
  EXPECT_EQ(empty_target.MergeShardRange(clean, 0, num_words), 0u);
}

TEST(BlockedInsertBatchPartitionedTest, MatchesSerialAcrossSimdLevels) {
  AbParams params;
  params.n_bits = uint64_t{1} << 15;
  params.k = 5;
  std::mt19937_64 rng(31);
  std::vector<uint64_t> keys(20000);
  for (uint64_t& k : keys) k = rng();
  BlockedApproximateBitmap serial(params);
  serial.InsertBatch(keys.data(), keys.size());
  util::ThreadPool pool(4);
  for (util::simd::SimdLevel forced : kForcedLevels) {
    ScopedSimdLevel scoped(forced);
    BlockedApproximateBitmap partitioned(params);
    partitioned.InsertBatchPartitioned(keys.data(), keys.size(), &pool);
    ASSERT_EQ(serial.insertions(), partitioned.insertions());
    ASSERT_DOUBLE_EQ(serial.FillRatio(), partitioned.FillRatio());
    std::mt19937_64 probe_rng(32);
    for (int i = 0; i < 4000; ++i) {
      uint64_t k = probe_rng();
      ASSERT_EQ(serial.Test(k), partitioned.Test(k))
          << "probe " << i << " simd " << util::simd::SimdLevelName(forced);
    }
    for (uint64_t k : keys) ASSERT_TRUE(partitioned.Test(k));
  }
  // Tiny batches and null pools fall back to the serial batch.
  BlockedApproximateBitmap tiny_a(params);
  BlockedApproximateBitmap tiny_b(params);
  tiny_a.InsertBatch(keys.data(), 10);
  tiny_b.InsertBatchPartitioned(keys.data(), 10, nullptr);
  EXPECT_EQ(tiny_a.insertions(), tiny_b.insertions());
  EXPECT_DOUBLE_EQ(tiny_a.FillRatio(), tiny_b.FillRatio());
}

TEST(CountingMergeTest, SaturatingMergeIsExactUnderSaturation) {
  // min(15, min(15,a) + min(15,b)) == min(15, a+b): repeat one cell 20
  // times split 12/8 across two shards — both the merged and the serial
  // filter must clamp to the same counters, byte for byte.
  AbParams params;
  params.n_bits = 1 << 12;
  params.k = 4;
  auto family = std::shared_ptr<const hash::HashFamily>(
      hash::MakeIndependentFamily());
  CountingApproximateBitmap serial(params, family);
  CountingApproximateBitmap shard_a = serial.EmptyClone();
  CountingApproximateBitmap shard_b = serial.EmptyClone();
  hash::CellRef cell{7, 3};
  for (int i = 0; i < 20; ++i) serial.Insert(42, cell);
  for (int i = 0; i < 12; ++i) shard_a.Insert(42, cell);
  for (int i = 0; i < 8; ++i) shard_b.Insert(42, cell);
  // Plus background cells on both sides of the split.
  CellBatch batch = RandomCells(600, 55);
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    serial.Insert(batch.keys[i], batch.cells[i]);
    (i < 300 ? shard_a : shard_b).Insert(batch.keys[i], batch.cells[i]);
  }
  CountingApproximateBitmap merged = serial.EmptyClone();
  merged.MergeSaturating(shard_a);
  merged.MergeSaturating(shard_b);
  EXPECT_EQ(serial.raw_counters(), merged.raw_counters());
  EXPECT_EQ(serial.live(), merged.live());
}

TEST(StringHash4DispatchTest, ForcedKernelsProduceIdenticalFilters) {
  // The lockstep string-hash path is a cost decision, never a semantic
  // one: filters built with it forced on and forced off must be
  // bit-identical (on non-AVX2 hosts both runs take the scalar path and
  // the assertion is trivially true — the same fallback contract as the
  // SIMD parity suite).
  CellBatch batch = RandomCells(2000, 123);
  ApproximateBitmap on = MakeFilter(1 << 14, 5);
  ApproximateBitmap off = on.EmptyClone();
  hash::SetStringHash4ForTesting(1);
  on.InsertBatch(batch.keys.data(), batch.cells.data(), batch.keys.size());
  hash::SetStringHash4ForTesting(0);
  off.InsertBatch(batch.keys.data(), batch.cells.data(), batch.keys.size());
  hash::SetStringHash4ForTesting(-1);
  EXPECT_EQ(on.bits(), off.bits());
  // The decision string is always well-formed and non-empty.
  EXPECT_FALSE(hash::StringHash4Decision().empty());
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
