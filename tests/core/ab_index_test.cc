#include "core/ab_index.h"

#include <random>
#include <tuple>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "data/query_gen.h"

namespace abitmap {
namespace ab {
namespace {

bitmap::BinnedDataset TestDataset(uint64_t rows, uint64_t seed) {
  return data::MakeSynthetic("test", rows, 3, 10, data::Distribution::kUniform,
                             seed);
}

TEST(AbIndexTest, LevelNames) {
  EXPECT_STREQ(LevelName(Level::kPerDataset), "per-dataset");
  EXPECT_STREQ(LevelName(Level::kPerAttribute), "per-attribute");
  EXPECT_STREQ(LevelName(Level::kPerColumn), "per-column");
  EXPECT_STREQ(HashSchemeName(HashScheme::kIndependent), "independent");
}

TEST(AbIndexTest, FilterCountPerLevel) {
  bitmap::BinnedDataset d = TestDataset(1000, 1);
  AbConfig cfg;
  cfg.alpha = 8;
  cfg.level = Level::kPerDataset;
  EXPECT_EQ(AbIndex::Build(d, cfg).num_filters(), 1u);
  cfg.level = Level::kPerAttribute;
  EXPECT_EQ(AbIndex::Build(d, cfg).num_filters(), 3u);
  cfg.level = Level::kPerColumn;
  EXPECT_EQ(AbIndex::Build(d, cfg).num_filters(), 30u);
}

class AbIndexLevelTest : public ::testing::TestWithParam<Level> {};

TEST_P(AbIndexLevelTest, NoFalseNegativesOnCells) {
  bitmap::BinnedDataset d = TestDataset(800, 2);
  AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);
  // Every true cell of the bitmap table must test positive.
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint64_t i = 0; i < 800; ++i) {
      EXPECT_TRUE(index.TestCell(i, a, d.values[a][i]))
          << "row " << i << " attr " << a;
    }
  }
}

TEST_P(AbIndexLevelTest, QueriesAreSupersetsOfExact) {
  bitmap::BinnedDataset d = TestDataset(1200, 3);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);

  data::QueryGenParams qp;
  qp.num_queries = 25;
  qp.rows_queried = 300;
  qp.seed = 11;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(d, qp)) {
    std::vector<bool> exact = table.Evaluate(q);
    std::vector<bool> approx = index.Evaluate(q);
    data::QueryAccuracy acc = data::CompareResults(exact, approx);
    EXPECT_EQ(acc.false_negatives, 0u);
    EXPECT_EQ(acc.recall(), 1.0);
  }
}

TEST_P(AbIndexLevelTest, PrecisionIsHighAtAlpha16) {
  bitmap::BinnedDataset d = TestDataset(2000, 4);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 16;
  AbIndex index = AbIndex::Build(d, cfg);

  data::QueryGenParams qp;
  qp.num_queries = 40;
  qp.rows_queried = 500;
  qp.seed = 13;
  data::BatchAccuracy batch;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(d, qp)) {
    batch.Add(data::CompareResults(table.Evaluate(q), index.Evaluate(q)));
  }
  // Paper: alpha=16 precision approaches 1 (Figure 11a).
  EXPECT_GT(batch.precision(), 0.95) << LevelName(GetParam());
  EXPECT_EQ(batch.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(Levels, AbIndexLevelTest,
                         ::testing::Values(Level::kPerDataset,
                                           Level::kPerAttribute,
                                           Level::kPerColumn),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           switch (info.param) {
                             case Level::kPerDataset:
                               return "PerDataset";
                             case Level::kPerAttribute:
                               return "PerAttribute";
                             default:
                               return "PerColumn";
                           }
                         });

TEST(AbIndexTest, SizeMatchesComputeLevelSize) {
  bitmap::BinnedDataset d = TestDataset(1500, 5);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 4;
    AbIndex index = AbIndex::Build(d, cfg);
    LevelSizeReport report = ComputeLevelSize(d, level, 4);
    EXPECT_EQ(index.SizeInBytes(), report.total_bytes) << LevelName(level);
    EXPECT_EQ(index.num_filters(), report.num_filters);
  }
}

TEST(AbIndexTest, ComputeLevelSizeMatchesPaperShapes) {
  // Section 4.2: per-attribute ABs can be alpha_1 = alpha_2 smaller each;
  // one per-attribute AB is 1/d-th the per-dataset AB when d is a power of
  // two fraction... concretely verify with d=4 attributes.
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t4", 4096, 4, 8, data::Distribution::kUniform, 6);
  LevelSizeReport ds = ComputeLevelSize(d, Level::kPerDataset, 4);
  LevelSizeReport attr = ComputeLevelSize(d, Level::kPerAttribute, 4);
  // s_dataset = 4*N and d=4 ABs of s=N: identical total when everything is
  // a power of two.
  EXPECT_EQ(ds.total_bytes, attr.total_bytes);
  EXPECT_EQ(attr.single_bytes * 4, attr.total_bytes);
}

TEST(AbIndexTest, ChooseLevelPrefersSmallerTotal) {
  bitmap::BinnedDataset d = TestDataset(1000, 7);
  Level chosen = ChooseLevel(d, 8);
  uint64_t chosen_bytes = ComputeLevelSize(d, chosen, 8).total_bytes;
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    EXPECT_LE(chosen_bytes, ComputeLevelSize(d, level, 8).total_bytes);
  }
}

TEST(AbIndexTest, OptimalKChosenWhenUnset) {
  bitmap::BinnedDataset d = TestDataset(500, 8);
  AbConfig cfg;
  cfg.level = Level::kPerAttribute;
  cfg.alpha = 8;
  cfg.k = 0;  // auto
  AbIndex index = AbIndex::Build(d, cfg);
  // Realized alpha is n_bits / N which is >= 8; optimal k near alpha*ln2.
  double realized = static_cast<double>(index.filter(0).size_bits()) / 500.0;
  EXPECT_EQ(index.filter(0).k(), OptimalK(realized));
}

TEST(AbIndexTest, ExplicitKRespected) {
  bitmap::BinnedDataset d = TestDataset(500, 9);
  AbConfig cfg;
  cfg.alpha = 8;
  cfg.k = 3;
  AbIndex index = AbIndex::Build(d, cfg);
  EXPECT_EQ(index.filter(0).k(), 3);
}

TEST(AbIndexTest, DegenerateRowOnlyMappingSaturates) {
  // Section 3.2.2's warning: F(i,j)=i at the per-dataset level sets the
  // same k bits for every attribute of row i; any queried cell of an
  // inserted row then reports 1, so the FP rate over non-matching cells
  // approaches 1.
  bitmap::BinnedDataset d = TestDataset(400, 10);
  AbConfig cfg;
  cfg.level = Level::kPerDataset;
  cfg.alpha = 8;
  cfg.degenerate_row_only_mapping = true;
  AbIndex index = AbIndex::Build(d, cfg);
  uint64_t fp = 0, negatives = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    for (uint32_t b = 0; b < 10; ++b) {
      if (d.values[0][i] != b) {
        ++negatives;
        if (index.TestCell(i, 0, b)) ++fp;
      }
    }
  }
  EXPECT_EQ(fp, negatives);  // every negative cell is a false positive
}

TEST(AbIndexTest, ParallelBuildIsBitIdenticalToSerial) {
  bitmap::BinnedDataset d = TestDataset(3000, 21);
  for (Level level :
       {Level::kPerDataset, Level::kPerAttribute, Level::kPerColumn}) {
    AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 8;
    AbIndex serial = AbIndex::Build(d, cfg);
    AbIndex parallel = AbIndex::BuildParallel(d, cfg, 4);
    ASSERT_EQ(serial.num_filters(), parallel.num_filters());
    for (size_t f = 0; f < serial.num_filters(); ++f) {
      EXPECT_EQ(serial.filter(f).bits(), parallel.filter(f).bits())
          << LevelName(level) << " filter " << f;
      EXPECT_EQ(serial.filter(f).insertions(),
                parallel.filter(f).insertions());
    }
  }
}

TEST(AbIndexTest, ParallelBuildSingleThreadDegenerates) {
  bitmap::BinnedDataset d = TestDataset(200, 22);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex serial = AbIndex::Build(d, cfg);
  AbIndex parallel = AbIndex::BuildParallel(d, cfg, 1);
  EXPECT_EQ(serial.filter(0).bits(), parallel.filter(0).bits());
}

TEST(AbIndexTest, ParallelBuildMoreThreadsThanRows) {
  bitmap::BinnedDataset d = TestDataset(5, 23);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex parallel = AbIndex::BuildParallel(d, cfg, 16);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint64_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(parallel.TestCell(i, a, d.values[a][i]));
    }
  }
}

TEST(AbIndexTest, EvaluateCellsMatchesTestCellGlobal) {
  bitmap::BinnedDataset d = TestDataset(300, 11);
  AbConfig cfg;
  cfg.alpha = 8;
  AbIndex index = AbIndex::Build(d, cfg);
  bitmap::CellQuery cells = {{5, 0}, {5, 12}, {299, 29}, {0, 0}};
  std::vector<bool> got = index.EvaluateCells(cells);
  ASSERT_EQ(got.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(got[i], index.TestCellGlobal(cells[i].row, cells[i].col));
  }
}

TEST(AbIndexTest, ColumnGroupSchemeWorksAtAttributeLevel) {
  bitmap::BinnedDataset d = TestDataset(600, 12);
  AbConfig cfg;
  cfg.level = Level::kPerAttribute;
  cfg.alpha = 8;
  cfg.scheme = HashScheme::kColumnGroup;
  cfg.k = 2;
  AbIndex index = AbIndex::Build(d, cfg);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint64_t i = 0; i < 600; ++i) {
      EXPECT_TRUE(index.TestCell(i, a, d.values[a][i]));
    }
  }
}

TEST(AbIndexTest, Sha1SchemeNoFalseNegatives) {
  bitmap::BinnedDataset d = TestDataset(500, 13);
  AbConfig cfg;
  cfg.alpha = 8;
  cfg.scheme = HashScheme::kSha1;
  cfg.k = 4;
  AbIndex index = AbIndex::Build(d, cfg);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint64_t i = 0; i < 500; ++i) {
      EXPECT_TRUE(index.TestCell(i, a, d.values[a][i]));
    }
  }
}

TEST(AbIndexTest, PrecisionImprovesWithAlpha) {
  // Figure 11(a): precision rises steadily with alpha.
  bitmap::BinnedDataset d = TestDataset(2000, 14);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  data::QueryGenParams qp;
  qp.num_queries = 30;
  qp.rows_queried = 400;
  qp.seed = 15;
  std::vector<bitmap::BitmapQuery> queries = data::GenerateQueries(d, qp);

  double prev = 0;
  for (double alpha : {2.0, 4.0, 8.0, 16.0}) {
    AbConfig cfg;
    cfg.alpha = alpha;
    AbIndex index = AbIndex::Build(d, cfg);
    data::BatchAccuracy batch;
    for (const bitmap::BitmapQuery& q : queries) {
      batch.Add(data::CompareResults(table.Evaluate(q), index.Evaluate(q)));
    }
    EXPECT_GE(batch.precision(), prev - 0.05) << alpha;
    prev = batch.precision();
  }
  EXPECT_GT(prev, 0.95);
}

}  // namespace
}  // namespace ab
}  // namespace abitmap
