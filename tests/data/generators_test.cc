#include "data/generators.h"

#include <numeric>

#include "gtest/gtest.h"

namespace abitmap {
namespace data {
namespace {

TEST(GeneratorsTest, UniformShapeMatchesTable3) {
  bitmap::BinnedDataset d = MakeUniformDataset(1, /*scale=*/10);
  d.CheckValid();
  EXPECT_EQ(d.num_rows(), 10000u);
  EXPECT_EQ(d.num_attributes(), 2u);
  EXPECT_EQ(d.num_bitmap_columns(), 100u);  // 2 x 50 bins
}

TEST(GeneratorsTest, LandsatShapeMatchesTable3) {
  bitmap::BinnedDataset d = MakeLandsatDataset(1, /*scale=*/100);
  d.CheckValid();
  EXPECT_EQ(d.num_rows(), 2754u);
  EXPECT_EQ(d.num_attributes(), 60u);
  EXPECT_EQ(d.num_bitmap_columns(), 900u);  // 60 x 15 bins
}

TEST(GeneratorsTest, HepShapeMatchesTable3) {
  bitmap::BinnedDataset d = MakeHepDataset(1, /*scale=*/200);
  d.CheckValid();
  EXPECT_EQ(d.num_rows(), 10868u);
  EXPECT_EQ(d.num_attributes(), 6u);
  EXPECT_EQ(d.num_bitmap_columns(), 66u);  // 6 x 11 bins
}

TEST(GeneratorsTest, UniformBinsAreBalanced) {
  bitmap::BinnedDataset d = MakeUniformDataset(2, /*scale=*/4);
  for (uint32_t a = 0; a < d.num_attributes(); ++a) {
    std::vector<int> counts(d.attributes[a].cardinality, 0);
    for (uint32_t v : d.values[a]) ++counts[v];
    double expected = static_cast<double>(d.num_rows()) / counts.size();
    for (int c : counts) {
      EXPECT_GT(c, expected * 0.6);
      EXPECT_LT(c, expected * 1.5);
    }
  }
}

TEST(GeneratorsTest, GaussianEquiDepthBinsAreBalanced) {
  bitmap::BinnedDataset d = MakeLandsatDataset(3, /*scale=*/50);
  // Equi-depth binning of Gaussian values: every bin holds ~1/15 of rows.
  std::vector<int> counts(15, 0);
  for (uint32_t v : d.values[0]) ++counts[v];
  double expected = static_cast<double>(d.num_rows()) / 15;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.8);
    EXPECT_LT(c, expected * 1.2);
  }
}

TEST(GeneratorsTest, ZipfIsSkewed) {
  bitmap::BinnedDataset d = MakeHepDataset(4, /*scale=*/100);
  // Zipf: bin 0 must dominate bin 10 heavily.
  std::vector<int> counts(11, 0);
  for (uint32_t v : d.values[0]) ++counts[v];
  EXPECT_GT(counts[0], counts[10] * 4);
  // And counts must be monotonically non-increasing in expectation; check
  // the first few strictly.
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[1], counts[5]);
}

TEST(GeneratorsTest, SeedsAreReproducible) {
  bitmap::BinnedDataset a = MakeUniformDataset(9, 20);
  bitmap::BinnedDataset b = MakeUniformDataset(9, 20);
  EXPECT_EQ(a.values, b.values);
  bitmap::BinnedDataset c = MakeUniformDataset(10, 20);
  EXPECT_NE(a.values, c.values);
}

TEST(GeneratorsTest, SyntheticCustomShape) {
  bitmap::BinnedDataset d =
      MakeSynthetic("custom", 123, 5, 7, Distribution::kUniform, 11);
  d.CheckValid();
  EXPECT_EQ(d.name, "custom");
  EXPECT_EQ(d.num_rows(), 123u);
  EXPECT_EQ(d.num_attributes(), 5u);
  EXPECT_EQ(d.num_bitmap_columns(), 35u);
}

TEST(GeneratorsTest, SetBitsEqualRowsTimesAttrs) {
  // Equality encoding invariant behind Table 3's "Setbits" column:
  // s = N * d exactly.
  bitmap::BinnedDataset d = MakeHepDataset(5, /*scale=*/500);
  uint64_t total_values = 0;
  for (const auto& col : d.values) total_values += col.size();
  EXPECT_EQ(total_values, d.num_rows() * d.num_attributes());
}

}  // namespace
}  // namespace data
}  // namespace abitmap
