#include "data/query_gen.h"

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "data/generators.h"

namespace abitmap {
namespace data {
namespace {

bitmap::BinnedDataset Small() { return MakeUniformDataset(21, /*scale=*/20); }

TEST(QueryGenTest, ProducesRequestedCount) {
  QueryGenParams p;
  p.num_queries = 37;
  p.rows_queried = 100;
  std::vector<bitmap::BitmapQuery> qs = GenerateQueries(Small(), p);
  EXPECT_EQ(qs.size(), 37u);
}

TEST(QueryGenTest, DimensionalityAndWidth) {
  bitmap::BinnedDataset d = Small();
  QueryGenParams p;
  p.qdim = 2;
  p.bins_per_attr = 4;
  p.rows_queried = 50;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    ASSERT_EQ(q.ranges.size(), 2u);
    EXPECT_NE(q.ranges[0].attr, q.ranges[1].attr);
    for (const bitmap::AttributeRange& r : q.ranges) {
      EXPECT_LE(r.lo_bin, r.hi_bin);
      EXPECT_LE(r.hi_bin - r.lo_bin + 1, 4u);  // clamped at cardinality
      EXPECT_LT(r.hi_bin, d.attributes[r.attr].cardinality);
    }
  }
}

TEST(QueryGenTest, RowRangeSizeAndBounds) {
  bitmap::BinnedDataset d = Small();
  QueryGenParams p;
  p.rows_queried = 123;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    ASSERT_EQ(q.rows.size(), 123u);
    EXPECT_LT(q.rows.back(), d.num_rows());
    // Contiguous ascending.
    for (size_t i = 1; i < q.rows.size(); ++i) {
      EXPECT_EQ(q.rows[i], q.rows[i - 1] + 1);
    }
  }
}

TEST(QueryGenTest, AnchoredQueriesHaveAtLeastOneMatch) {
  // The sampling guarantee of Section 5.3, strengthened to hold within the
  // queried row range.
  bitmap::BinnedDataset d = Small();
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  QueryGenParams p;
  p.num_queries = 50;
  p.rows_queried = 200;
  p.anchor_in_row_range = true;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    std::vector<bool> exact = table.Evaluate(q);
    int matches = 0;
    for (bool b : exact) matches += b;
    EXPECT_GE(matches, 1);
  }
}

TEST(QueryGenTest, Deterministic) {
  bitmap::BinnedDataset d = Small();
  QueryGenParams p;
  p.seed = 99;
  p.rows_queried = 64;
  std::vector<bitmap::BitmapQuery> a = GenerateQueries(d, p);
  std::vector<bitmap::BitmapQuery> b = GenerateQueries(d, p);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rows, b[i].rows);
    ASSERT_EQ(a[i].ranges.size(), b[i].ranges.size());
    for (size_t r = 0; r < a[i].ranges.size(); ++r) {
      EXPECT_EQ(a[i].ranges[r].attr, b[i].ranges[r].attr);
      EXPECT_EQ(a[i].ranges[r].lo_bin, b[i].ranges[r].lo_bin);
      EXPECT_EQ(a[i].ranges[r].hi_bin, b[i].ranges[r].hi_bin);
    }
  }
}

TEST(QueryGenTest, UnanchoredModeStillInBounds) {
  bitmap::BinnedDataset d = Small();
  QueryGenParams p;
  p.anchor_in_row_range = false;
  p.rows_queried = 500;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    EXPECT_EQ(q.rows.size(), 500u);
    EXPECT_LT(q.rows.back(), d.num_rows());
  }
}

TEST(QueryGenTest, SelFractionOverridesBinWidth) {
  bitmap::BinnedDataset d = Small();  // cardinality 50 per attribute
  QueryGenParams p;
  p.bins_per_attr = 99;  // must be ignored
  p.sel_fraction = 0.10;  // 10% of 50 bins = 5 bins
  p.rows_queried = 20;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    for (const bitmap::AttributeRange& r : q.ranges) {
      EXPECT_LE(r.hi_bin - r.lo_bin + 1, 5u);
    }
  }
}

TEST(QueryGenTest, TinySelFractionStillOneBin) {
  bitmap::BinnedDataset d = Small();
  QueryGenParams p;
  p.sel_fraction = 0.001;  // < one bin -> clamped to 1
  p.rows_queried = 10;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    for (const bitmap::AttributeRange& r : q.ranges) {
      EXPECT_EQ(r.hi_bin, r.lo_bin);
    }
  }
}

TEST(QueryGenTest, FullWidthQdim) {
  bitmap::BinnedDataset d = Small();
  QueryGenParams p;
  p.qdim = d.num_attributes();
  p.rows_queried = 10;
  for (const bitmap::BitmapQuery& q : GenerateQueries(d, p)) {
    EXPECT_EQ(q.ranges.size(), d.num_attributes());
  }
}

}  // namespace
}  // namespace data
}  // namespace abitmap
