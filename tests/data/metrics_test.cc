#include "data/metrics.h"

#include "gtest/gtest.h"

namespace abitmap {
namespace data {
namespace {

TEST(MetricsTest, PerfectAnswer) {
  std::vector<bool> exact = {true, false, true};
  QueryAccuracy acc = CompareResults(exact, exact);
  EXPECT_EQ(acc.exact_ones, 2u);
  EXPECT_EQ(acc.approx_ones, 2u);
  EXPECT_EQ(acc.false_positives, 0u);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_EQ(acc.precision(), 1.0);
  EXPECT_EQ(acc.recall(), 1.0);
}

TEST(MetricsTest, FalsePositivesLowerPrecision) {
  std::vector<bool> exact = {true, false, false, false};
  std::vector<bool> approx = {true, true, false, false};
  QueryAccuracy acc = CompareResults(exact, approx);
  EXPECT_EQ(acc.false_positives, 1u);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(acc.precision(), 0.5);
  EXPECT_EQ(acc.recall(), 1.0);
}

TEST(MetricsTest, EmptyAnswerHasPrecisionOne) {
  std::vector<bool> exact = {false, false};
  std::vector<bool> approx = {false, false};
  QueryAccuracy acc = CompareResults(exact, approx);
  EXPECT_EQ(acc.precision(), 1.0);
  EXPECT_EQ(acc.recall(), 1.0);
}

TEST(MetricsTest, FalseNegativeDetected) {
  // The AB never produces these, but the metric must catch them if a bug
  // ever did.
  std::vector<bool> exact = {true, true};
  std::vector<bool> approx = {true, false};
  QueryAccuracy acc = CompareResults(exact, approx);
  EXPECT_EQ(acc.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(acc.recall(), 0.5);
}

TEST(MetricsTest, BatchAggregation) {
  BatchAccuracy batch;
  batch.Add(CompareResults({true, false}, {true, true}));
  batch.Add(CompareResults({true, true}, {true, true}));
  EXPECT_EQ(batch.queries, 2u);
  EXPECT_EQ(batch.exact_ones, 3u);
  EXPECT_EQ(batch.approx_ones, 4u);
  EXPECT_EQ(batch.false_positives, 1u);
  EXPECT_DOUBLE_EQ(batch.precision(), 0.75);
}

TEST(MetricsTest, BatchEmptyPrecisionOne) {
  BatchAccuracy batch;
  EXPECT_EQ(batch.precision(), 1.0);
}

}  // namespace
}  // namespace data
}  // namespace abitmap
