#include "engine/csv.h"

#include "gtest/gtest.h"

namespace abitmap {
namespace engine {
namespace {

TEST(CsvTest, BasicDocument) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("a,b,c\n1,2,3\n4,5,6\n", &doc).ok());
  EXPECT_EQ(doc.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc.num_rows(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, MissingTrailingNewline) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("x,y\n7,8", &doc).ok());
  ASSERT_EQ(doc.num_rows(), 1u);
  EXPECT_EQ(doc.rows[0][1], "8");
}

TEST(CsvTest, CrLfLineEndings) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("a,b\r\n1,2\r\n", &doc).ok());
  ASSERT_EQ(doc.num_rows(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(CsvTest, QuotedFields) {
  CsvDocument doc;
  ASSERT_TRUE(
      ParseCsv("name,value\n\"hello, world\",1\n\"say \"\"hi\"\"\",2\n", &doc)
          .ok());
  ASSERT_EQ(doc.num_rows(), 2u);
  EXPECT_EQ(doc.rows[0][0], "hello, world");
  EXPECT_EQ(doc.rows[1][0], "say \"hi\"");
}

TEST(CsvTest, QuotedNewline) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("a,b\n\"line1\nline2\",3\n", &doc).ok());
  ASSERT_EQ(doc.num_rows(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(CsvTest, EmptyFields) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("a,b,c\n1,,3\n", &doc).ok());
  EXPECT_EQ(doc.rows[0][1], "");
}

TEST(CsvTest, RaggedRowRejected) {
  CsvDocument doc;
  util::Status s = ParseCsv("a,b\n1,2,3\n", &doc);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  CsvDocument doc;
  util::Status s = ParseCsv("a\n\"oops\n", &doc);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
}

TEST(CsvTest, EmptyInputRejected) {
  CsvDocument doc;
  EXPECT_FALSE(ParseCsv("", &doc).ok());
}

TEST(CsvTest, HeaderOnlyIsValid) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("a,b\n", &doc).ok());
  EXPECT_EQ(doc.num_rows(), 0u);
}

}  // namespace
}  // namespace engine
}  // namespace abitmap
