#include "engine/exact_index.h"

#include <random>

#include "bitmap/bitmap_table.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "util/bitvector.h"
#include "wah/wah_query.h"

namespace abitmap {
namespace engine {
namespace {

/// A column with `runs` runs of `run_len` set bits, evenly spaced over
/// `rows` rows — lets a test dial density and run structure separately.
util::BitVector MakeRunColumn(uint64_t rows, uint64_t runs,
                              uint64_t run_len) {
  util::BitVector bits(rows);
  uint64_t stride = rows / runs;
  for (uint64_t r = 0; r < runs; ++r) {
    uint64_t start = r * stride;
    for (uint64_t i = 0; i < run_len && start + i < rows; ++i) {
      bits.Set(start + i);
    }
  }
  return bits;
}

TEST(ColumnProfileTest, CountsBitsAndRuns) {
  util::BitVector bits(1000);
  // Three runs: [10,12], {100}, [500,539].
  for (uint64_t i : {10, 11, 12, 100}) bits.Set(i);
  for (uint64_t i = 500; i < 540; ++i) bits.Set(i);
  ColumnProfile p = ProfileColumn(bits);
  EXPECT_EQ(p.rows, 1000u);
  EXPECT_EQ(p.set_bits, 44u);
  EXPECT_EQ(p.runs, 3u);
  EXPECT_NEAR(p.density(), 0.044, 1e-9);
  EXPECT_NEAR(p.avg_run_length(), 44.0 / 3.0, 1e-9);
}

TEST(ColumnProfileTest, RunsAcrossWordBoundaries) {
  // One run straddling the bit-63/64 boundary must count once, not twice.
  util::BitVector bits(256);
  for (uint64_t i = 60; i < 70; ++i) bits.Set(i);
  EXPECT_EQ(ProfileColumn(bits).runs, 1u);
  // A run starting exactly at a word boundary.
  util::BitVector at_boundary(256);
  for (uint64_t i = 128; i < 130; ++i) at_boundary.Set(i);
  EXPECT_EQ(ProfileColumn(at_boundary).runs, 1u);
}

TEST(ChooseBackendTest, ThresholdTable) {
  auto profile = [](uint64_t rows, uint64_t set_bits, uint64_t runs) {
    ColumnProfile p;
    p.rows = rows;
    p.set_bits = set_bits;
    p.runs = runs;
    return p;
  };
  // Sparse (<1%) -> Roaring, regardless of run structure.
  EXPECT_EQ(ChooseBackend(profile(100000, 500, 500)), BackendChoice::kRoaring);
  EXPECT_EQ(ChooseBackend(profile(100000, 900, 10)), BackendChoice::kRoaring);
  // Long runs (>= 31 set bits per run) -> WAH.
  EXPECT_EQ(ChooseBackend(profile(100000, 40000, 1000)), BackendChoice::kWah);
  // Dense and fragmented -> AB-preferred.
  EXPECT_EQ(ChooseBackend(profile(100000, 30000, 15000)), BackendChoice::kAb);
  // Low density with mid-length runs -> BBC.
  EXPECT_EQ(ChooseBackend(profile(100000, 3000, 300)), BackendChoice::kBbc);
  // Mid-density fragmented -> Roaring.
  EXPECT_EQ(ChooseBackend(profile(100000, 10000, 9000)),
            BackendChoice::kRoaring);
}

TEST(BackendChoiceTest, NamesRoundTrip) {
  for (size_t i = 0; i < kNumBackendChoices; ++i) {
    BackendChoice c = static_cast<BackendChoice>(i);
    BackendChoice parsed;
    ASSERT_TRUE(ParseBackendChoice(BackendChoiceName(c), &parsed));
    EXPECT_EQ(parsed, c);
  }
  BackendChoice unused;
  EXPECT_FALSE(ParseBackendChoice("auto", &unused));
  EXPECT_FALSE(ParseBackendChoice("", &unused));
  EXPECT_FALSE(ParseBackendChoice("WAH", &unused));
}

bitmap::BinnedDataset SmallDataset(uint64_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  bitmap::BinnedDataset d;
  d.name = "small";
  d.attributes = {{"A", 8}, {"B", 5}, {"C", 12}};
  for (const bitmap::AttributeInfo& a : d.attributes) {
    std::vector<uint32_t> col;
    col.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      col.push_back(static_cast<uint32_t>(rng() % a.cardinality));
    }
    d.values.push_back(col);
  }
  return d;
}

TEST(ExactIndexTest, MatchesWahIndexOnEveryBackend) {
  bitmap::BinnedDataset dataset = SmallDataset(3000, 21);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);
  wah::WahIndex reference = wah::WahIndex::Build(table);
  std::mt19937_64 rng(22);
  for (const char* backend : {"auto", "wah", "bbc", "roaring", "ab"}) {
    ExactIndex index = ExactIndex::Build(table, nullptr, backend);
    ASSERT_EQ(index.num_columns(), table.num_columns());
    for (uint32_t j = 0; j < index.num_columns(); ++j) {
      ASSERT_EQ(index.DecompressColumn(j), table.column(j))
          << backend << " column " << j;
    }
    for (int trial = 0; trial < 15; ++trial) {
      bitmap::BitmapQuery q;
      uint32_t attr = static_cast<uint32_t>(rng() % 3);
      uint32_t card = table.mapping().cardinality(attr);
      uint32_t lo = static_cast<uint32_t>(rng() % card);
      uint32_t hi = lo + static_cast<uint32_t>(rng() % (card - lo));
      q.ranges.push_back(bitmap::AttributeRange{attr, lo, hi});
      if (trial % 3 == 1) {
        uint32_t attr2 = (attr + 1) % 3;
        uint32_t card2 = table.mapping().cardinality(attr2);
        q.ranges.push_back(
            bitmap::AttributeRange{attr2, 0, (card2 - 1) / 2});
      }
      if (trial % 2 == 1) {
        uint64_t start = rng() % 2000;
        q.rows = bitmap::RowRange(start, start + 800);
      }
      EXPECT_EQ(index.ExecuteBitwiseBits(q), reference.ExecuteBitwiseBits(q))
          << backend << " trial " << trial;
      EXPECT_EQ(index.Evaluate(q), reference.Evaluate(q))
          << backend << " trial " << trial;
    }
  }
}

TEST(ExactIndexTest, PooledBuildIdenticalToSerial) {
  bitmap::BinnedDataset dataset = SmallDataset(2500, 23);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);
  ExactIndex serial = ExactIndex::Build(table, nullptr);
  for (int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    ExactIndex parallel = ExactIndex::Build(table, &pool);
    ASSERT_EQ(parallel.num_columns(), serial.num_columns());
    for (uint32_t j = 0; j < serial.num_columns(); ++j) {
      EXPECT_EQ(parallel.column_choice(j), serial.column_choice(j));
      EXPECT_EQ(parallel.DecompressColumn(j), serial.DecompressColumn(j));
    }
    EXPECT_EQ(parallel.SizeInBytes(), serial.SizeInBytes());
  }
}

TEST(ExactIndexTest, PlanLabelsAndAbPreference) {
  bitmap::BinnedDataset dataset = SmallDataset(1200, 24);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);

  ExactIndex roaring_only = ExactIndex::Build(table, nullptr, "roaring");
  bitmap::BitmapQuery q;
  q.ranges.push_back(bitmap::AttributeRange{0, 0, 3});
  EXPECT_STREQ(roaring_only.PlanBackendLabel(q), "roaring");
  EXPECT_FALSE(roaring_only.PlanPrefersAb(q));

  ExactIndex ab_only = ExactIndex::Build(table, nullptr, "ab");
  EXPECT_STREQ(ab_only.PlanBackendLabel(q), "ab");
  EXPECT_TRUE(ab_only.PlanPrefersAb(q));
  bitmap::BitmapQuery empty;
  EXPECT_STREQ(ab_only.PlanBackendLabel(empty), "none");
  EXPECT_FALSE(ab_only.PlanPrefersAb(empty));
}

TEST(ExactIndexTest, SelectorPicksExpectedBackendsOnShapedColumns) {
  // Columns engineered to each selector regime, round-tripped through a
  // one-attribute table per shape so Build sees exactly that bitmap.
  const uint64_t rows = 200000;
  struct Shape {
    util::BitVector bits;
    BackendChoice want;
  };
  std::vector<Shape> shapes;
  {
    // 0.1% density, scattered singletons -> Roaring.
    util::BitVector sparse(rows);
    for (uint64_t i = 0; i < rows; i += 1000) sparse.Set(i);
    shapes.push_back({std::move(sparse), BackendChoice::kRoaring});
  }
  {
    // 20% density in runs of 100 -> WAH (avg run >= 31).
    shapes.push_back(
        {MakeRunColumn(rows, rows / 500, 100), BackendChoice::kWah});
  }
  {
    // 50% density alternating bits -> AB-preferred (dense, run length 1).
    util::BitVector dense(rows);
    for (uint64_t i = 0; i < rows; i += 2) dense.Set(i);
    shapes.push_back({std::move(dense), BackendChoice::kAb});
  }
  {
    // 2% density in runs of 10 -> BBC.
    shapes.push_back(
        {MakeRunColumn(rows, rows / 500, 10), BackendChoice::kBbc});
  }
  for (size_t s = 0; s < shapes.size(); ++s) {
    EXPECT_EQ(ChooseBackend(ProfileColumn(shapes[s].bits)), shapes[s].want)
        << "shape " << s;
  }
}

TEST(ExactIndexTest, SeedDatasetsRoundTripUnderSelector) {
  for (const bitmap::BinnedDataset& dataset :
       {data::MakeUniformDataset(31, 20), data::MakeLandsatDataset(32, 30),
        data::MakeHepDataset(33, 60)}) {
    bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);
    ExactIndex index = ExactIndex::Build(table, nullptr);
    uint64_t total = 0;
    for (uint64_t c : index.choice_counts()) total += c;
    ASSERT_EQ(total, index.num_columns());
    for (uint32_t j = 0; j < index.num_columns(); ++j) {
      ASSERT_EQ(index.DecompressColumn(j), table.column(j)) << "column " << j;
    }
  }
}

}  // namespace
}  // namespace engine
}  // namespace abitmap
