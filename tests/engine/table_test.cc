#include "engine/table.h"

#include <random>

#include "gtest/gtest.h"

namespace abitmap {
namespace engine {
namespace {

util::StatusOr<Table> MakeTable() {
  return Table::FromColumns(
      "t", {"x", "y"},
      {{1.0, 2.0, 3.0, 4.0, 5.0}, {10.0, 20.0, 30.0, 40.0, 50.0}});
}

TEST(TableTest, FromColumnsBasics) {
  util::StatusOr<Table> t = MakeTable();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_rows(), 5u);
  EXPECT_EQ(t.value().num_columns(), 2u);
  EXPECT_EQ(t.value().value(2, 1), 30.0);
  EXPECT_EQ(t.value().ColumnIndex("y"), 1);
  EXPECT_EQ(t.value().ColumnIndex("nope"), -1);
}

TEST(TableTest, RejectsRaggedColumns) {
  util::StatusOr<Table> t =
      Table::FromColumns("t", {"a", "b"}, {{1.0, 2.0}, {1.0}});
  EXPECT_FALSE(t.ok());
}

TEST(TableTest, RejectsEmpty) {
  EXPECT_FALSE(Table::FromColumns("t", {}, {}).ok());
  EXPECT_FALSE(Table::FromColumns("t", {"a"}, {{}}).ok());
}

TEST(TableTest, FromCsv) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("x,y\n1.5,2\n-3,4e2\n", &doc).ok());
  util::StatusOr<Table> t = Table::FromCsv("csv", doc);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.value().value(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(t.value().value(1, 1), 400.0);
}

TEST(TableTest, FromCsvRejectsNonNumeric) {
  CsvDocument doc;
  ASSERT_TRUE(ParseCsv("x\nhello\n", &doc).ok());
  util::StatusOr<Table> t = Table::FromCsv("csv", doc);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(TableTest, DiscretizeEquiDepth) {
  std::mt19937_64 rng(4);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(std::exponential_distribution<double>(1.0)(rng));
  }
  util::StatusOr<Table> t = Table::FromColumns("t", {"v"}, {values});
  ASSERT_TRUE(t.ok());
  BinningSpec spec;
  spec.kind = BinningSpec::Kind::kEquiDepth;
  spec.bins = 10;
  Table::Discretized d = t.value().Discretize(spec);
  d.dataset.CheckValid();
  EXPECT_EQ(d.dataset.num_rows(), 1000u);
  EXPECT_EQ(d.dataset.attributes[0].cardinality, 10u);
  EXPECT_EQ(d.dataset.attributes[0].name, "v");
  std::vector<int> counts(10, 0);
  for (uint32_t b : d.dataset.values[0]) ++counts[b];
  for (int c : counts) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 200);
  }
}

TEST(TableTest, DiscretizeBinsMatchBinner) {
  util::StatusOr<Table> t = MakeTable();
  ASSERT_TRUE(t.ok());
  BinningSpec spec;
  spec.kind = BinningSpec::Kind::kEquiWidth;
  spec.bins = 4;
  Table::Discretized d = t.value().Discretize(spec);
  for (uint64_t r = 0; r < 5; ++r) {
    for (uint32_t c = 0; c < 2; ++c) {
      EXPECT_EQ(d.dataset.values[c][r],
                d.binners[c].BinOf(t.value().value(r, c)));
    }
  }
}

TEST(TableTest, PerColumnSpecs) {
  util::StatusOr<Table> t = MakeTable();
  ASSERT_TRUE(t.ok());
  std::vector<BinningSpec> specs(2);
  specs[0].bins = 2;
  specs[1].bins = 5;
  Table::Discretized d = t.value().Discretize(specs);
  EXPECT_EQ(d.dataset.attributes[0].cardinality, 2u);
  EXPECT_EQ(d.dataset.attributes[1].cardinality, 5u);
}

}  // namespace
}  // namespace engine
}  // namespace abitmap
