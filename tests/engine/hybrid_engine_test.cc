#include "engine/hybrid_engine.h"

#include <algorithm>
#include <random>

#include "gtest/gtest.h"
#include "obs/stats.h"

namespace abitmap {
namespace engine {
namespace {

Table MakeRandomTable(uint64_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> price, quantity, rating;
  for (uint64_t i = 0; i < rows; ++i) {
    price.push_back(std::uniform_real_distribution<double>(0, 100)(rng));
    quantity.push_back(static_cast<double>(rng() % 50));
    rating.push_back(std::normal_distribution<double>(3.0, 1.0)(rng));
  }
  util::StatusOr<Table> t = Table::FromColumns(
      "orders", {"price", "quantity", "rating"}, {price, quantity, rating});
  AB_CHECK(t.ok());
  return std::move(t).value();
}

HybridEngine MakeEngine(uint64_t rows, uint64_t seed) {
  HybridEngine::Options options;
  options.binning.bins = 16;
  options.ab.alpha = 16;
  options.ab.level = ab::Level::kPerAttribute;
  return HybridEngine::Build(MakeRandomTable(rows, seed), options);
}

std::vector<uint64_t> BruteForce(const Table& t, const EngineQuery& q) {
  std::vector<uint64_t> rows = q.rows;
  if (rows.empty()) {
    for (uint64_t r = 0; r < t.num_rows(); ++r) rows.push_back(r);
  }
  std::vector<uint64_t> out;
  for (uint64_t r : rows) {
    bool match = true;
    for (const ValuePredicate& p : q.predicates) {
      double v = t.value(r, p.attr);
      if (v < p.lo || v > p.hi) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(r);
  }
  return out;
}

TEST(HybridEngineTest, ExactResultsMatchBruteForceBothPaths) {
  HybridEngine engine = MakeEngine(3000, 1);
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    EngineQuery q;
    q.predicates.push_back(ValuePredicate{0, 20.0, 60.0});
    q.predicates.push_back(ValuePredicate{1, 5.0, 30.0});
    if (trial % 2 == 0) {
      uint64_t lo = rng() % 2000;
      q.rows = bitmap::RowRange(lo, lo + 500);
    }
    std::vector<uint64_t> expected = BruteForce(engine.table(), q);
    EXPECT_EQ(engine.ExecuteWithAb(q).row_ids, expected) << trial;
    EXPECT_EQ(engine.ExecuteWithExact(q).row_ids, expected) << trial;
    EXPECT_EQ(engine.Execute(q).row_ids, expected) << trial;
  }
}

TEST(HybridEngineTest, RoutesByRowFraction) {
  HybridEngine engine = MakeEngine(5000, 3);
  EngineQuery q;
  q.predicates.push_back(ValuePredicate{0, 0.0, 50.0});

  // Whole relation -> exact arm.
  EngineResult whole = engine.Execute(q);
  EXPECT_EQ(whole.path, "exact");
  // The trace carries the serving backend: a single name or "mixed".
  EXPECT_STRNE(whole.trace.backend, "");
  EXPECT_STRNE(whole.trace.backend, "none");

  // Tiny subset (below the default 2% threshold) -> AB.
  q.rows = bitmap::RowRange(100, 140);  // 41 rows of 5000 = 0.8%
  EngineResult tiny = engine.Execute(q);
  EXPECT_EQ(tiny.path, "ab");
  EXPECT_STREQ(tiny.trace.backend, "ab");

  // Large subset -> exact arm.
  q.rows = bitmap::RowRange(0, 2499);  // 50%
  EXPECT_EQ(engine.Execute(q).path, "exact");
}

TEST(HybridEngineTest, ApproximateModeIsSupersetOfExact) {
  HybridEngine engine = MakeEngine(2000, 4);
  EngineQuery q;
  q.predicates.push_back(ValuePredicate{2, 2.0, 3.5});
  q.rows = bitmap::RowRange(0, 999);

  q.exact = true;
  std::vector<uint64_t> exact_rows = engine.ExecuteWithAb(q).row_ids;
  q.exact = false;
  EngineResult approx = engine.ExecuteWithAb(q);
  EXPECT_TRUE(approx.approximate);
  EXPECT_GE(approx.row_ids.size(), exact_rows.size());
  // Every exact row must appear in the candidate set.
  EXPECT_TRUE(std::includes(approx.row_ids.begin(), approx.row_ids.end(),
                            exact_rows.begin(), exact_rows.end()));
}

TEST(HybridEngineTest, BinBoundaryOvershootIsPruned) {
  // A predicate cutting through the middle of a bin: the bin-level answer
  // overshoots, the exact path must not.
  HybridEngine engine = MakeEngine(2000, 5);
  EngineQuery q;
  q.predicates.push_back(ValuePredicate{0, 33.3, 33.9});  // narrow slice
  std::vector<uint64_t> expected = BruteForce(engine.table(), q);
  EXPECT_EQ(engine.Execute(q).row_ids, expected);
  for (uint64_t r : engine.Execute(q).row_ids) {
    double v = engine.table().value(r, 0);
    EXPECT_GE(v, 33.3);
    EXPECT_LE(v, 33.9);
  }
}

TEST(HybridEngineTest, EmptyPredicateListSelectsRequestedRows) {
  HybridEngine engine = MakeEngine(500, 6);
  EngineQuery q;
  q.rows = bitmap::RowRange(10, 19);
  EngineResult result = engine.Execute(q);
  EXPECT_EQ(result.row_ids, bitmap::RowRange(10, 19));
}

TEST(HybridEngineTest, SizesReported) {
  HybridEngine engine = MakeEngine(2000, 7);
  EXPECT_GT(engine.ExactSizeBytes(), 0u);
  EXPECT_GT(engine.AbSizeBytes(), 0u);
}

TEST(HybridEngineTest, ParallelBuildYieldsIdenticalIndexes) {
  // Build runs WAH compression and AB population through the engine pool;
  // both parallel paths are bit-identical to serial, so a 1-thread and a
  // 4-thread engine must hold the same indexes and answer identically.
  HybridEngine::Options serial_opts;
  serial_opts.binning.bins = 16;
  serial_opts.ab.alpha = 8;
  serial_opts.num_threads = 1;
  HybridEngine::Options parallel_opts = serial_opts;
  parallel_opts.num_threads = 4;
  HybridEngine serial = HybridEngine::Build(MakeRandomTable(2500, 9), serial_opts);
  HybridEngine parallel =
      HybridEngine::Build(MakeRandomTable(2500, 9), parallel_opts);
  ASSERT_EQ(serial.exact_index().num_columns(),
            parallel.exact_index().num_columns());
  for (uint32_t j = 0; j < serial.exact_index().num_columns(); ++j) {
    ASSERT_EQ(serial.exact_index().column_choice(j),
              parallel.exact_index().column_choice(j))
        << "backend choice, column " << j;
    ASSERT_EQ(serial.exact_index().DecompressColumn(j),
              parallel.exact_index().DecompressColumn(j))
        << "exact column " << j;
  }
  ASSERT_EQ(serial.ab_index().num_filters(), parallel.ab_index().num_filters());
  for (size_t f = 0; f < serial.ab_index().num_filters(); ++f) {
    ASSERT_EQ(serial.ab_index().filter(f).bits(),
              parallel.ab_index().filter(f).bits())
        << "ab filter " << f;
  }
  EngineQuery q;
  q.predicates.push_back(ValuePredicate{0, 10.0, 70.0});
  q.rows = bitmap::RowRange(100, 1600);
  EXPECT_EQ(serial.Execute(q).row_ids, parallel.Execute(q).row_ids);
}

TEST(HybridEngineTest, BackendOptionForcesEveryColumn) {
  for (const char* backend : {"wah", "bbc", "roaring"}) {
    HybridEngine::Options options;
    options.binning.bins = 16;
    options.ab.alpha = 8;
    options.backend = backend;
    HybridEngine engine =
        HybridEngine::Build(MakeRandomTable(1500, 10), options);
    const ExactIndex& exact = engine.exact_index();
    BackendChoice want;
    ASSERT_TRUE(ParseBackendChoice(backend, &want));
    for (uint32_t j = 0; j < exact.num_columns(); ++j) {
      EXPECT_EQ(exact.column_choice(j), want) << backend << " column " << j;
    }
    EngineQuery q;
    q.predicates.push_back(ValuePredicate{0, 20.0, 60.0});
    EXPECT_EQ(engine.Execute(q).row_ids, BruteForce(engine.table(), q))
        << backend;
    EXPECT_STREQ(engine.Execute(q).trace.backend, backend);
  }
}

TEST(HybridEngineTest, AbBackendEnvOverridesOption) {
  ::setenv("AB_BACKEND", "wah", 1);
  HybridEngine::Options options;
  options.binning.bins = 8;
  options.backend = "roaring";  // should lose to the environment
  HybridEngine engine = HybridEngine::Build(MakeRandomTable(600, 11), options);
  ::unsetenv("AB_BACKEND");
  const ExactIndex& exact = engine.exact_index();
  for (uint32_t j = 0; j < exact.num_columns(); ++j) {
    EXPECT_EQ(exact.column_choice(j), BackendChoice::kWah) << "column " << j;
  }
}

TEST(HybridEngineTest, ForcedBackendsAgreeOnEveryQuery) {
  // The same table under every forced backend (and the selector) must
  // answer every query identically: backends differ in cost, never in
  // bits.
  std::vector<HybridEngine> engines;
  for (const char* backend : {"auto", "wah", "bbc", "roaring", "ab"}) {
    HybridEngine::Options options;
    options.binning.bins = 16;
    options.ab.alpha = 8;
    options.backend = backend;
    engines.push_back(HybridEngine::Build(MakeRandomTable(2000, 12), options));
  }
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    EngineQuery q;
    q.predicates.push_back(
        ValuePredicate{static_cast<uint32_t>(trial % 3), 10.0, 70.0});
    if (trial % 2 == 1) {
      uint64_t lo = rng() % 1000;
      q.rows = bitmap::RowRange(lo, lo + 700);
    }
    std::vector<uint64_t> expected = engines[0].ExecuteWithExact(q).row_ids;
    for (size_t e = 1; e < engines.size(); ++e) {
      EXPECT_EQ(engines[e].ExecuteWithExact(q).row_ids, expected)
          << "engine " << e << " trial " << trial;
    }
  }
}

TEST(HybridEngineTest, AbPreferredPlansGetRaisedCrossover) {
  // Force every column AB-preferring: a subset at 10% of the rows sits
  // above the default 2% crossover but below the raised 15% one, so it
  // must route to the AB.
  HybridEngine::Options options;
  options.binning.bins = 16;
  options.ab.alpha = 16;
  options.backend = "ab";
  HybridEngine engine = HybridEngine::Build(MakeRandomTable(5000, 14), options);
  EngineQuery q;
  q.predicates.push_back(ValuePredicate{0, 20.0, 60.0});
  q.rows = bitmap::RowRange(0, 499);  // 10%
  EngineResult result = engine.Execute(q);
  EXPECT_EQ(result.path, "ab");
  // Past the raised crossover the exact arm takes over again.
  q.rows = bitmap::RowRange(0, 999);  // 20%
  EXPECT_EQ(engine.Execute(q).path, "exact");
}

TEST(HybridEngineTest, ChoiceSummaryCoversEveryColumn) {
  HybridEngine engine = MakeEngine(2000, 15);
  const ExactIndex& exact = engine.exact_index();
  uint64_t total = 0;
  for (uint64_t c : exact.choice_counts()) total += c;
  EXPECT_EQ(total, exact.num_columns());
  std::string summary = exact.ChoiceSummary();
  for (const char* name : {"wah=", "bbc=", "roaring=", "ab="}) {
    EXPECT_NE(summary.find(name), std::string::npos) << summary;
  }
}

TEST(HybridEngineTest, MeasureCrossoverReturnsSaneFraction) {
  HybridEngine engine = MakeEngine(20000, 8);
  double crossover = engine.MeasureCrossover();
  EXPECT_GT(crossover, 0.0);
  EXPECT_LE(crossover, 0.5);
  EXPECT_EQ(engine.crossover_fraction(), crossover);
}

TEST(HybridEngineTest, ExecuteBatchMatchesPerQueryExecuteInOrder) {
  HybridEngine engine = MakeEngine(3000, 9);
  std::mt19937_64 rng(3);
  std::vector<EngineQuery> batch;
  for (int i = 0; i < 12; ++i) {
    EngineQuery q;
    double lo = std::uniform_real_distribution<double>(0, 80)(rng);
    q.predicates.push_back(ValuePredicate{0, lo, lo + 20});
    if (i % 3 == 1) {
      // Row-subset query: exercises the AB routing arm inside a batch.
      uint64_t start = rng() % 2900;
      for (uint64_t r = start; r < start + 100; ++r) q.rows.push_back(r);
    }
    if (i % 4 == 3) q.exact = false;  // approximate-answer mode
    batch.push_back(q);
  }
  std::vector<EngineResult> results = engine.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EngineResult direct = engine.Execute(batch[i]);
    EXPECT_EQ(results[i].row_ids, direct.row_ids) << "query " << i;
    EXPECT_EQ(results[i].path, direct.path) << "query " << i;
    EXPECT_EQ(results[i].approximate, direct.approximate) << "query " << i;
  }
}

TEST(HybridEngineTest, ExecuteBatchParityWithEnginePool) {
  HybridEngine::Options options;
  options.binning.bins = 16;
  options.ab.alpha = 16;
  options.ab.level = ab::Level::kPerAttribute;
  options.num_threads = 2;
  HybridEngine pooled =
      HybridEngine::Build(MakeRandomTable(3000, 10), options);
  HybridEngine serial = MakeEngine(3000, 10);

  std::vector<EngineQuery> batch;
  for (int i = 0; i < 8; ++i) {
    EngineQuery q;
    q.predicates.push_back(ValuePredicate{1, double(i), double(i + 10)});
    batch.push_back(q);
  }
  std::vector<EngineResult> a = pooled.ExecuteBatch(batch);
  std::vector<EngineResult> b = serial.ExecuteBatch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row_ids, b[i].row_ids) << "query " << i;
  }
}

TEST(HybridEngineTest, ExecuteBatchDedupesIdenticalQueries) {
  HybridEngine engine = MakeEngine(3000, 11);
  EngineQuery hot;
  hot.predicates.push_back(ValuePredicate{0, 10.0, 90.0});
  EngineQuery cold;
  cold.predicates.push_back(ValuePredicate{1, 0.0, 5.0});
  std::vector<EngineQuery> batch = {hot, cold, hot, hot, cold, hot};

  uint64_t before = 0, after = 0;
  if (obs::kStatsEnabled) {
    before = obs::SnapshotStats().counter(
        obs::Counter::kEngineBatchDedupHits);
  }
  std::vector<EngineResult> results = engine.ExecuteBatch(batch);
  if (obs::kStatsEnabled) {
    after = obs::SnapshotStats().counter(
        obs::Counter::kEngineBatchDedupHits);
    // 6 queries, 2 distinct: 4 answered from the in-batch duplicates.
    EXPECT_EQ(after - before, 4u);
  }
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].row_ids, results[2].row_ids);
  EXPECT_EQ(results[0].row_ids, results[3].row_ids);
  EXPECT_EQ(results[0].row_ids, results[5].row_ids);
  EXPECT_EQ(results[1].row_ids, results[4].row_ids);
  EXPECT_EQ(results[0].row_ids, engine.Execute(hot).row_ids);
  EXPECT_EQ(results[1].row_ids, engine.Execute(cold).row_ids);
}

TEST(HybridEngineTest, ExecuteBatchOnEmptyInputReturnsEmpty) {
  HybridEngine engine = MakeEngine(1000, 12);
  EXPECT_TRUE(engine.ExecuteBatch({}).empty());
}

// Ground truth for a mutated engine: raw values of every committed row
// (base then ingested) plus a liveness mask, evaluated the same way
// BruteForce evaluates the immutable table.
std::vector<uint64_t> BruteForceMutable(
    const std::vector<std::vector<double>>& rows,
    const std::vector<bool>& live, const EngineQuery& q) {
  std::vector<uint64_t> ids = q.rows;
  if (ids.empty()) {
    for (uint64_t r = 0; r < rows.size(); ++r) ids.push_back(r);
  }
  std::vector<uint64_t> out;
  for (uint64_t r : ids) {
    if (!live[r]) continue;
    bool match = true;
    for (const ValuePredicate& p : q.predicates) {
      if (rows[r][p.attr] < p.lo || rows[r][p.attr] > p.hi) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(r);
  }
  return out;
}

TEST(HybridEngineTest, IngestedRowsAreQueryableAgainstGroundTruth) {
  HybridEngine engine = MakeEngine(1500, 21);
  const uint64_t base_n = engine.base_rows();
  ASSERT_EQ(base_n, 1500u);
  EXPECT_EQ(engine.TotalRows(), base_n);

  std::vector<std::vector<double>> rows;
  for (uint64_t r = 0; r < base_n; ++r) {
    rows.push_back({engine.table().value(r, 0), engine.table().value(r, 1),
                    engine.table().value(r, 2)});
  }
  std::mt19937_64 rng(22);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> v = {
        std::uniform_real_distribution<double>(0, 100)(rng),
        static_cast<double>(rng() % 50),
        std::normal_distribution<double>(3.0, 1.0)(rng)};
    uint64_t id = engine.IngestRow(v);
    // Ids continue the base numbering, in commit order.
    EXPECT_EQ(id, base_n + static_cast<uint64_t>(i));
    EXPECT_TRUE(engine.RowLive(id));
    rows.push_back(v);
  }
  EXPECT_EQ(engine.TotalRows(), base_n + 300);
  std::vector<bool> live(rows.size(), true);

  // Whole relation: base matches then delta matches, both ascending.
  EngineQuery q;
  q.predicates.push_back(ValuePredicate{0, 20.0, 60.0});
  q.predicates.push_back(ValuePredicate{1, 5.0, 30.0});
  std::vector<uint64_t> expected = BruteForceMutable(rows, live, q);
  EXPECT_EQ(engine.Execute(q).row_ids, expected);
  // The workload has to actually exercise the delta for this to mean
  // anything.
  ASSERT_FALSE(expected.empty());
  EXPECT_GT(expected.back(), base_n);

  // Explicit row subset straddling the base/delta boundary.
  q.rows = bitmap::RowRange(1400, 1700);
  EXPECT_EQ(engine.Execute(q).row_ids, BruteForceMutable(rows, live, q));

  // Delta-only subset.
  q.rows = bitmap::RowRange(base_n, base_n + 299);
  EXPECT_EQ(engine.Execute(q).row_ids, BruteForceMutable(rows, live, q));
}

TEST(HybridEngineTest, DeleteRowTombstonesBaseAndDeltaRows) {
  HybridEngine engine = MakeEngine(800, 23);
  const uint64_t base_n = engine.base_rows();
  std::vector<std::vector<double>> rows;
  for (uint64_t r = 0; r < base_n; ++r) {
    rows.push_back({engine.table().value(r, 0), engine.table().value(r, 1),
                    engine.table().value(r, 2)});
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<double> v = {50.0 + i * 0.1, 10.0, 3.0};
    engine.IngestRow(v);
    rows.push_back(v);
  }
  std::vector<bool> live(rows.size(), true);

  // Base deletes: first delete wins, the second is a no-op.
  std::mt19937_64 rng(24);
  for (int i = 0; i < 150; ++i) {
    uint64_t row = rng() % base_n;
    EXPECT_EQ(engine.DeleteRow(row), live[row] == true);
    live[row] = false;
    EXPECT_FALSE(engine.RowLive(row));
  }
  // Delta deletes.
  for (uint64_t local : {3u, 40u, 99u}) {
    uint64_t id = base_n + local;
    EXPECT_TRUE(engine.DeleteRow(id));
    EXPECT_FALSE(engine.DeleteRow(id));
    EXPECT_FALSE(engine.RowLive(id));
    live[id] = false;
  }
  // Unknown ids are rejected, and ids stay permanent: TotalRows counts
  // the dead.
  EXPECT_FALSE(engine.DeleteRow(engine.TotalRows()));
  EXPECT_FALSE(engine.RowLive(engine.TotalRows()));
  EXPECT_EQ(engine.TotalRows(), base_n + 100);

  EngineQuery q;
  q.predicates.push_back(ValuePredicate{0, 40.0, 70.0});
  EXPECT_EQ(engine.Execute(q).row_ids, BruteForceMutable(rows, live, q));

  q.rows = bitmap::RowRange(700, base_n + 99);
  EXPECT_EQ(engine.Execute(q).row_ids, BruteForceMutable(rows, live, q));
}

TEST(HybridEngineTest, IngestStatsTrackChurnAndMergeSignal) {
  HybridEngine engine = MakeEngine(600, 25);
  HybridEngine::IngestStats before = engine.GetIngestStats();
  EXPECT_EQ(before.ingested, 0u);
  EXPECT_EQ(before.deleted, 0u);
  EXPECT_EQ(before.delta_live, 0u);
  EXPECT_EQ(before.delta_worst_fp, 0.0);

  for (int i = 0; i < 200; ++i) {
    engine.IngestRow({static_cast<double>(i % 100), 5.0, 2.5});
  }
  uint64_t base_n = engine.base_rows();
  for (int i = 0; i < 40; ++i) engine.DeleteRow(base_n + i);  // delta rows
  for (int i = 0; i < 10; ++i) engine.DeleteRow(i);           // base rows

  HybridEngine::IngestStats after = engine.GetIngestStats();
  EXPECT_EQ(after.ingested, 200u);
  EXPECT_EQ(after.deleted, 50u);
  EXPECT_EQ(after.delta_live, 160u);
  EXPECT_GT(after.delta_worst_fp, 0.0);
  EXPECT_LT(after.delta_worst_fp, 1.0);
  // Folding 160 extra live rows into the base AB can only raise its
  // expected FP relative to folding none.
  EXPECT_GE(after.base_fp_if_merged, before.base_fp_if_merged);
  EXPECT_GT(after.base_fp_if_merged, 0.0);
}

TEST(HybridEngineTest, ExecuteBatchSeesMutations) {
  HybridEngine engine = MakeEngine(1000, 27);
  const uint64_t base_n = engine.base_rows();
  std::vector<std::vector<double>> rows;
  for (uint64_t r = 0; r < base_n; ++r) {
    rows.push_back({engine.table().value(r, 0), engine.table().value(r, 1),
                    engine.table().value(r, 2)});
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<double> v = {25.0 + i, 20.0, 3.0};
    engine.IngestRow(v);
    rows.push_back(v);
  }
  std::vector<bool> live(rows.size(), true);
  for (uint64_t row : {5u, 6u, 7u}) {
    engine.DeleteRow(row);
    live[row] = false;
  }

  EngineQuery whole;
  whole.predicates.push_back(ValuePredicate{0, 20.0, 60.0});
  EngineQuery subset = whole;
  subset.rows = bitmap::RowRange(0, base_n + 49);
  std::vector<EngineResult> results = engine.ExecuteBatch({whole, subset});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].row_ids, BruteForceMutable(rows, live, whole));
  EXPECT_EQ(results[1].row_ids, BruteForceMutable(rows, live, subset));
  // Batch and single-query paths agree on the mutated engine.
  EXPECT_EQ(results[0].row_ids, engine.Execute(whole).row_ids);
}

}  // namespace
}  // namespace engine
}  // namespace abitmap
