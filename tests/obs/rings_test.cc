// Tests of the slow-query log and time-series rings (src/obs/slowlog.h,
// src/obs/timeseries.h): seqlock ring round-trips, bounded wraparound,
// JSON schemas, threshold plumbing, and the compile-out contract. Like
// stats_test.cc the file compiles in both configurations, branching on
// obs::kStatsEnabled; the concurrency cases double as TSan witnesses for
// the word-ring publish protocol.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "obs/slowlog.h"
#include "obs/stats.h"
#include "obs/timeseries.h"

namespace abitmap {
namespace obs {
namespace {

SlowQueryRecord MakeRecord(uint64_t trace_id) {
  SlowQueryRecord r;
  r.trace_id = trace_id;
  r.request_id = trace_id + 1000;
  r.status = 0;
  r.batch_size = 4;
  r.mono_ns = 123456789;
  r.total_ns = 2000000;
  r.decode_ns = 1000;
  r.queue_ns = 500000;
  r.batch_ns = 1500000;
  r.engine_ns = 1200000;
  r.verify_ns = 300000;
  r.serialize_ns = 2000;
  r.path = "ab";
  r.backend = "ab";
  r.candidates = 100;
  r.verified_matches = 97;
  r.observed_precision = 0.97;
  return r;
}

// --- slow-query log -------------------------------------------------------

TEST(SlowLogTest, ThresholdAccessorsWorkInBothConfigurations) {
  // Threshold is configuration, not telemetry: it must round-trip even in
  // an AB_DISABLE_STATS build so --slow-ms is never silently ignored.
  uint64_t prev = SlowLogThresholdNs();
  SetSlowLogThresholdNs(0);
  EXPECT_EQ(SlowLogThresholdNs(), 0u);
  SetSlowLogThresholdNs(42u * 1000 * 1000);
  EXPECT_EQ(SlowLogThresholdNs(), 42u * 1000 * 1000);
  SetSlowLogThresholdNs(prev);
}

TEST(SlowLogTest, RecordRoundTripsThroughTheRing) {
  ClearSlowLog();
  RecordSlowQuery(MakeRecord(7));
  RecordSlowQuery(MakeRecord(8));
  std::vector<SlowQueryRecord> records = SnapshotSlowLog();
  if (!kStatsEnabled) {
    EXPECT_TRUE(records.empty());
    return;
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 7u);
  EXPECT_EQ(records[1].trace_id, 8u);
  EXPECT_EQ(records[0].request_id, 1007u);
  EXPECT_EQ(records[0].batch_size, 4u);
  EXPECT_EQ(records[0].total_ns, 2000000u);
  EXPECT_EQ(records[0].queue_ns, 500000u);
  EXPECT_EQ(records[0].engine_ns, 1200000u);
  EXPECT_EQ(records[0].verify_ns, 300000u);
  EXPECT_EQ(records[0].serialize_ns, 2000u);
  EXPECT_STREQ(records[0].path, "ab");
  EXPECT_STREQ(records[0].backend, "ab");
  EXPECT_EQ(records[0].candidates, 100u);
  EXPECT_EQ(records[0].verified_matches, 97u);
  EXPECT_DOUBLE_EQ(records[0].observed_precision, 0.97);
}

TEST(SlowLogTest, RingIsBoundedAndKeepsTheNewest) {
  ClearSlowLog();
  for (uint64_t i = 0; i < kSlowLogCapacity + 32; ++i) {
    RecordSlowQuery(MakeRecord(i));
  }
  std::vector<SlowQueryRecord> records = SnapshotSlowLog();
  if (!kStatsEnabled) {
    EXPECT_TRUE(records.empty());
    return;
  }
  EXPECT_LE(records.size(), kSlowLogCapacity);
  // The newest record survived the wrap; the oldest 32 did not.
  bool found_newest = false;
  for (const SlowQueryRecord& r : records) {
    EXPECT_GE(r.trace_id, 32u);
    if (r.trace_id == kSlowLogCapacity + 31) found_newest = true;
  }
  EXPECT_TRUE(found_newest);
}

TEST(SlowLogTest, JsonCarriesTheSchema) {
  ClearSlowLog();
  RecordSlowQuery(MakeRecord(99));
  std::string json = SlowLogToJson();
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"threshold_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  if (kStatsEnabled) {
    EXPECT_NE(json.find("\"trace_id\": 99"), std::string::npos) << json;
    EXPECT_NE(json.find("\"queue_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"engine_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"verify_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"serialize_ns\""), std::string::npos);
  } else {
    EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
  }
}

TEST(SlowLogTest, ConcurrentWritersAndReadersAreClean) {
  // TSan witness for the seqlock word-ring: concurrent recorders with a
  // racing snapshotter must produce no data races and only whole records
  // (a torn slot is skipped, never surfaced).
  ClearSlowLog();
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 400;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<SlowQueryRecord> records = SnapshotSlowLog();
      for (const SlowQueryRecord& r : records) {
        // Every surfaced record is internally consistent.
        ASSERT_EQ(r.request_id, r.trace_id + 1000);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        RecordSlowQuery(MakeRecord(static_cast<uint64_t>(w) * kPerWriter + i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
}

// --- time series ----------------------------------------------------------

TEST(TimeSeriesTest, SampleFromStatsDistillsCounters) {
  ResetStats();
  AB_STATS_INC(Counter::kServeRequests);
  AB_STATS_INC(Counter::kServeRequests);
  AB_STATS_INC(Counter::kServeBatches);
  AB_STATS_HIST(Histogram::kServeRequestLatencyNs, 1000000);
  TsSample s = TsSampleFromStats(SnapshotStats());
  if (kStatsEnabled) {
    EXPECT_EQ(s.serve_requests, 2u);
    EXPECT_EQ(s.serve_batches, 1u);
    EXPECT_GT(s.request_p99_us, 0.0);
  } else {
    EXPECT_EQ(s.serve_requests, 0u);
    EXPECT_EQ(s.serve_batches, 0u);
  }
  // Gauge block is the sampler's job, untouched here.
  EXPECT_EQ(s.delta_live, 0u);
  EXPECT_EQ(s.rebuild_running, 0u);
}

TEST(TimeSeriesTest, SamplesRoundTripInOrder) {
  ClearTimeSeries();
  for (uint64_t i = 0; i < 5; ++i) {
    TsSample s;
    s.mono_ns = 1000 + i;
    s.serve_requests = i * 10;
    s.delta_live = i;
    s.delta_worst_fp = 0.001 * static_cast<double>(i);
    s.rebuild_running = i % 2;
    RecordTimeSeriesSample(s);
  }
  std::vector<TsSample> samples = SnapshotTimeSeries();
  if (!kStatsEnabled) {
    EXPECT_TRUE(samples.empty());
    return;
  }
  ASSERT_EQ(samples.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(samples[i].mono_ns, 1000 + i);
    EXPECT_EQ(samples[i].serve_requests, i * 10);
    EXPECT_EQ(samples[i].delta_live, i);
    EXPECT_DOUBLE_EQ(samples[i].delta_worst_fp,
                     0.001 * static_cast<double>(i));
    EXPECT_EQ(samples[i].rebuild_running, i % 2);
  }
}

TEST(TimeSeriesTest, RingIsBounded) {
  ClearTimeSeries();
  for (uint64_t i = 0; i < kTimeSeriesCapacity + 64; ++i) {
    TsSample s;
    s.mono_ns = i;
    RecordTimeSeriesSample(s);
  }
  std::vector<TsSample> samples = SnapshotTimeSeries();
  if (!kStatsEnabled) {
    EXPECT_TRUE(samples.empty());
    return;
  }
  EXPECT_LE(samples.size(), kTimeSeriesCapacity);
  bool found_newest = false;
  for (const TsSample& s : samples) {
    EXPECT_GE(s.mono_ns, 64u);
    if (s.mono_ns == kTimeSeriesCapacity + 63) found_newest = true;
  }
  EXPECT_TRUE(found_newest);
}

TEST(TimeSeriesTest, JsonCarriesTheSchema) {
  ClearTimeSeries();
  TsSample s;
  s.mono_ns = 777;
  s.delta_live = 3;
  RecordTimeSeriesSample(s);
  std::string json = TimeSeriesToJson();
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  if (kStatsEnabled) {
    EXPECT_NE(json.find("\"mono_ns\": 777"), std::string::npos) << json;
    EXPECT_NE(json.find("\"delta_live\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"request_p99_us\""), std::string::npos);
    EXPECT_NE(json.find("\"rebuild_running\""), std::string::npos);
  } else {
    EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
  }
}

TEST(TimeSeriesTest, ConcurrentSamplersAreClean) {
  ClearTimeSeries();
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 600;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<TsSample> samples = SnapshotTimeSeries();
      for (const TsSample& s : samples) {
        ASSERT_EQ(s.serve_requests, s.mono_ns * 2);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        TsSample s;
        s.mono_ns = static_cast<uint64_t>(w) * kPerWriter + i;
        s.serve_requests = s.mono_ns * 2;
        RecordTimeSeriesSample(s);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
}

}  // namespace
}  // namespace obs
}  // namespace abitmap
