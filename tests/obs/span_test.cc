// Span-tracing layer: the compile-out contract, ring bounds, parent/child
// nesting, thread-pool context propagation (the trace-coherence guarantee
// of the tentpole), and the Chrome Trace Event JSON export. Every test
// runs in both tier-1 configurations; stats-off asserts the disabled
// behavior instead of skipping.
//
// The propagation test doubles as the TSan coverage for the lock-free
// span ring: tools/check.sh runs this binary under ThreadSanitizer, so
// concurrent PublishSpan/SnapshotSpans races would be flagged there.

#include "obs/span.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/stats.h"
#include "json_check.h"
#include "util/thread_pool.h"

namespace abitmap {
namespace obs {
namespace {

/// First snapshot event with the given name, or nullptr.
const SpanEvent* FindSpan(const std::vector<SpanEvent>& events,
                          const std::string& name) {
  for (const SpanEvent& e : events) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

const SpanEvent* FindById(const std::vector<SpanEvent>& events, uint64_t id) {
  for (const SpanEvent& e : events) {
    if (e.span_id == id) return &e;
  }
  return nullptr;
}

/// [start, start+dur] of `inner` within that of `outer`.
bool Contains(const SpanEvent& outer, const SpanEvent& inner) {
  return inner.start_ns >= outer.start_ns &&
         inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns;
}

TEST(SpanTest, CompileOutContract) {
  ClearSpans();
  { AB_SPAN("contract/span"); }
  std::vector<SpanEvent> events = SnapshotSpans();
  if (kStatsEnabled) {
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "contract/span");
    EXPECT_NE(events[0].span_id, 0u);
    EXPECT_EQ(events[0].parent_id, 0u);
    EXPECT_NE(events[0].tid, 0u);
  } else {
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(CurrentSpanContext(), 0u);
  }
  // The export is link-compatible and valid JSON in both configurations.
  std::string json = SpansToChromeJson();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find(kStatsEnabled ? "\"enabled\": true"
                                    : "\"enabled\": false"),
            std::string::npos);
}

TEST(SpanTest, NestedSpansRecordParentAndContainment) {
  ClearSpans();
  {
    AB_SPAN("outer");
    {
      AB_SPAN("middle");
      { AB_SPAN("inner"); }
    }
  }
  std::vector<SpanEvent> events = SnapshotSpans();
  if (!kStatsEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), 3u);
  const SpanEvent* outer = FindSpan(events, "outer");
  const SpanEvent* middle = FindSpan(events, "middle");
  const SpanEvent* inner = FindSpan(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(middle->parent_id, outer->span_id);
  EXPECT_EQ(inner->parent_id, middle->span_id);
  EXPECT_TRUE(Contains(*outer, *middle));
  EXPECT_TRUE(Contains(*middle, *inner));
  // Inner spans complete (publish) before outer ones.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[2].name, "outer");
}

TEST(SpanTest, RingIsBounded) {
  ClearSpans();
  for (size_t i = 0; i < kSpanRingCapacity + 500; ++i) {
    AB_SPAN("bounded");
  }
  std::vector<SpanEvent> events = SnapshotSpans();
  if (!kStatsEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  // Oldest events were overwritten; the ring holds exactly capacity.
  EXPECT_EQ(events.size(), kSpanRingCapacity);
  ClearSpans();
  EXPECT_TRUE(SnapshotSpans().empty());
}

TEST(SpanTest, ThreadPoolPropagatesParentContext) {
  ClearSpans();
  {
    AB_SPAN("coordinator");
    util::ThreadPool pool(2);
    pool.ParallelFor(0, 1000,
                     [](uint64_t begin, uint64_t end, int /*chunk*/) {
                       AB_SPAN("chunk");
                       volatile uint64_t sink = 0;
                       for (uint64_t i = begin; i < end; ++i) sink += i;
                       (void)sink;
                     });
  }
  std::vector<SpanEvent> events = SnapshotSpans();
  if (!kStatsEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  const SpanEvent* coordinator = FindSpan(events, "coordinator");
  ASSERT_NE(coordinator, nullptr);
  // Every chunk span was recorded on a pool thread but chains back to the
  // coordinating span through its pool/task wrapper.
  size_t chunks = 0;
  for (const SpanEvent& e : events) {
    if (std::string("chunk") != e.name) continue;
    ++chunks;
    const SpanEvent* task = FindById(events, e.parent_id);
    ASSERT_NE(task, nullptr) << "chunk span has no recorded parent";
    EXPECT_STREQ(task->name, "pool/task");
    EXPECT_EQ(task->parent_id, coordinator->span_id);
    EXPECT_NE(task->tid, coordinator->tid) << "task should run on a worker";
    EXPECT_TRUE(Contains(*task, e));
    EXPECT_TRUE(Contains(*coordinator, *task));
  }
  EXPECT_GE(chunks, 1u);
  EXPECT_LE(chunks, 2u);  // a 2-thread pool submits at most 2 chunks
}

TEST(SpanTest, ConcurrentPublishAndSnapshotIsSafe) {
  // Hammer the ring from several writers while a reader snapshots: the
  // seqlock protocol must never yield torn events (and TSan must stay
  // quiet). Torn slots are skipped, so every surviving event is coherent.
  ClearSpans();
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([]() {
      for (int i = 0; i < 5000; ++i) {
        AB_SPAN("stress");
      }
    });
  }
  for (int r = 0; r < 20; ++r) {
    for (const SpanEvent& e : SnapshotSpans()) {
      ASSERT_STREQ(e.name, "stress");
      ASSERT_NE(e.span_id, 0u);
    }
  }
  for (std::thread& t : writers) t.join();
  std::vector<SpanEvent> events = SnapshotSpans();
  if (kStatsEnabled) {
    EXPECT_EQ(events.size(), std::min<size_t>(15000, kSpanRingCapacity));
  } else {
    EXPECT_TRUE(events.empty());
  }
}

TEST(SpanTest, ChromeJsonNestsPhasesAcrossThreads) {
  ClearSpans();
  {
    AB_SPAN("parallel/root");
    util::ThreadPool pool(2);
    pool.ParallelFor(0, 64, [](uint64_t, uint64_t, int) {
      AB_SPAN("parallel/chunk");
    });
  }
  std::string json = SpansToChromeJson();
  ASSERT_TRUE(test::IsValidJson(json)) << json;
  if (!kStatsEnabled) {
    EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
    return;
  }
  // Complete events for every phase, thread-name metadata, and flow
  // arrows binding the cross-thread parent links.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"parallel/root\""), std::string::npos);
  EXPECT_NE(json.find("\"parallel/chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  // Microsecond ts/dur fields are present on the X events.
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace abitmap
