// Concurrency tests of the per-thread stats blocks: increments recorded
// from util::ThreadPool workers must aggregate to exactly the serial
// tally — across pool lifetimes (retired-block accumulation) and while a
// reader snapshots concurrently. tools/check.sh runs these under
// ThreadSanitizer, which would flag any non-relaxed-atomic access the
// owner-only recording protocol missed.

#include <cstdint>
#include <memory>

#include "gtest/gtest.h"

#include "obs/stats.h"
#include "util/thread_pool.h"

namespace abitmap {
namespace obs {
namespace {

TEST(StatsConcurrencyTest, PoolIncrementsMatchSerialTallyExactly) {
  ResetStats();
  constexpr int kTasks = 32;
  constexpr uint64_t kIncrementsPerTask = 2000;
  {
    util::ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([] {
        for (uint64_t i = 0; i < kIncrementsPerTask; ++i) {
          AB_STATS_INC(Counter::kAbCellsTested);
          AB_STATS_ADD(Counter::kAbProbesResolved, i % 7);
        }
      });
    }
    pool.Wait();
    StatsSnapshot snap = SnapshotStats();
    uint64_t per_task_add = 0;
    for (uint64_t i = 0; i < kIncrementsPerTask; ++i) per_task_add += i % 7;
    if (kStatsEnabled) {
      EXPECT_EQ(snap.counter(Counter::kAbCellsTested),
                kTasks * kIncrementsPerTask);
      EXPECT_EQ(snap.counter(Counter::kAbProbesResolved),
                kTasks * per_task_add);
      // The pool's own instrumentation saw every task.
      EXPECT_EQ(snap.counter(Counter::kPoolTasksSubmitted),
                static_cast<uint64_t>(kTasks));
      EXPECT_EQ(snap.counter(Counter::kPoolTasksCompleted),
                static_cast<uint64_t>(kTasks));
      EXPECT_EQ(snap.histogram(Histogram::kPoolTaskLatencyNs).count,
                static_cast<uint64_t>(kTasks));
    } else {
      EXPECT_EQ(snap.counter(Counter::kAbCellsTested), 0u);
    }
  }
}

TEST(StatsConcurrencyTest, TotalsSurviveThreadChurn) {
  // One pool per query is an expected usage pattern: worker threads exit,
  // their blocks flush into the retired accumulator and are recycled.
  // Totals must be exact across many pool lifetimes.
  ResetStats();
  constexpr int kPools = 8;
  constexpr int kTasksPerPool = 5;
  constexpr uint64_t kAddPerTask = 1000;
  for (int p = 0; p < kPools; ++p) {
    util::ThreadPool pool(3);
    for (int t = 0; t < kTasksPerPool; ++t) {
      pool.Submit([] { AB_STATS_ADD(Counter::kIndexRowsEvaluated,
                                    kAddPerTask); });
    }
    pool.Wait();
    // Pool destructor joins the workers; their blocks retire here.
  }
  StatsSnapshot snap = SnapshotStats();
  EXPECT_EQ(snap.counter(Counter::kIndexRowsEvaluated),
            kStatsEnabled ? kPools * kTasksPerPool * kAddPerTask : 0u);
}

TEST(StatsConcurrencyTest, HistogramsAggregateAcrossWorkers) {
  ResetStats();
  constexpr int kTasks = 20;
  constexpr uint64_t kSamplesPerTask = 500;
  {
    util::ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([t] {
        for (uint64_t i = 0; i < kSamplesPerTask; ++i) {
          AB_STATS_HIST(Histogram::kEvalRowsPerQuery,
                        static_cast<uint64_t>(t) * kSamplesPerTask + i);
        }
      });
    }
    pool.Wait();
  }
  StatsSnapshot snap = SnapshotStats();
  const HistogramSnapshot& h = snap.histogram(Histogram::kEvalRowsPerQuery);
  if (!kStatsEnabled) {
    EXPECT_EQ(h.count, 0u);
    return;
  }
  constexpr uint64_t kTotal = kTasks * kSamplesPerTask;
  EXPECT_EQ(h.count, kTotal);
  EXPECT_EQ(h.sum, kTotal * (kTotal - 1) / 2);  // sum of 0..kTotal-1
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
    bucket_total += h.buckets[b];
  }
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(StatsConcurrencyTest, SnapshotWhileRecordingIsRaceFreeAndExactAtRest) {
  // Snapshots during recording see some prefix of the increments (never
  // corruption — TSan asserts race freedom); once the writers are joined
  // the total is exact.
  ResetStats();
  constexpr int kTasks = 16;
  constexpr uint64_t kIncrementsPerTask = 5000;
  util::ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([] {
      for (uint64_t i = 0; i < kIncrementsPerTask; ++i) {
        AB_STATS_INC(Counter::kAbCellsInserted);
      }
    });
  }
  constexpr uint64_t kTotal = kTasks * kIncrementsPerTask;
  uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    uint64_t now = SnapshotStats().counter(Counter::kAbCellsInserted);
    EXPECT_LE(now, kTotal);
    // Totals are monotonic while all writers stay live.
    EXPECT_GE(now, last);
    last = now;
  }
  pool.Wait();
  EXPECT_EQ(SnapshotStats().counter(Counter::kAbCellsInserted),
            kStatsEnabled ? kTotal : 0u);
}

}  // namespace
}  // namespace obs
}  // namespace abitmap
