#ifndef ABITMAP_TESTS_OBS_JSON_CHECK_H_
#define ABITMAP_TESTS_OBS_JSON_CHECK_H_

// Minimal JSON syntax validator for the obs tests: the repo takes no JSON
// library dependency, but the trace/stats endpoints promise syntactically
// valid JSON, so the tests parse it with a ~100-line recursive-descent
// checker (full JSON grammar, no semantics).

#include <cctype>
#include <cstddef>
#include <string>

namespace abitmap {
namespace test {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool Validate() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool Literal(const char* word) {
    for (; *word != '\0'; ++word, ++p_) {
      if (p_ >= end_ || *p_ != *word) return false;
    }
    return true;
  }

  bool ParseString() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
        if (*p_ == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ >= end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
              return false;
          }
        }
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool ParseNumber() {
    if (p_ < end_ && *p_ == '-') ++p_;
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
      return false;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return false;
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return false;
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return true;
  }

  bool ParseObject() {
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') return ++p_, true;
    for (;;) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (p_ >= end_ || *p_ != ':') return false;
      ++p_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == '}') return ++p_, true;
      return false;
    }
  }

  bool ParseArray() {
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') return ++p_, true;
    for (;;) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == ']') return ++p_, true;
      return false;
    }
  }

  bool ParseValue() {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  const char* p_;
  const char* end_;
};

inline bool IsValidJson(const std::string& text) {
  return JsonValidator(text).Validate();
}

}  // namespace test
}  // namespace abitmap

#endif  // ABITMAP_TESTS_OBS_JSON_CHECK_H_
