// Embedded observability HTTP server: loopback integration tests. A raw
// BSD-socket client (the test needs no HTTP library either) fetches every
// registered endpoint — including while a multi-threaded build + query
// workload is running — and checks status codes, content types, and
// payload shape in both tier-1 configurations.

#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/ab_index.h"
#include "data/generators.h"
#include "data/query_gen.h"
#include "gtest/gtest.h"
#include "json_check.h"
#include "obs/span.h"
#include "obs/stats.h"
#include "util/thread_pool.h"

namespace abitmap {
namespace obs {
namespace {

struct FetchResult {
  bool ok = false;
  int status = 0;
  std::string headers;
  std::string body;
};

/// Minimal HTTP/1.1 client: one request, reads to EOF (the server sends
/// Connection: close).
FetchResult Fetch(uint16_t port, const std::string& request_line) {
  FetchResult r;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return r;
  }
  std::string request = request_line + "\r\nHost: 127.0.0.1\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return r;
  r.headers = raw.substr(0, header_end);
  r.body = raw.substr(header_end + 4);
  if (std::sscanf(raw.c_str(), "HTTP/1.1 %d", &r.status) != 1) return r;
  r.ok = true;
  return r;
}

FetchResult Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1");
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterObsEndpoints(&server_);
    util::Status status = server_.Start();  // ephemeral port
    ASSERT_TRUE(status.ok()) << status.message();
    ASSERT_NE(server_.port(), 0);
  }

  HttpServer server_;
};

TEST_F(HttpServerTest, HealthzServesOk) {
  FetchResult r = Get(server_.port(), "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");
}

TEST_F(HttpServerTest, MetricsServesPrometheusWithBuildInfo) {
  FetchResult r = Get(server_.port(), "/metrics");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("text/plain; version=0.0.4"), std::string::npos);
  // The build-info gauge always reports, with the stats label telling a
  // live exporter from a compiled-out one.
  EXPECT_NE(r.body.find("abitmap_build_info{"), std::string::npos);
  EXPECT_NE(r.body.find(kStatsEnabled ? "stats=\"on\"" : "stats=\"off\""),
            std::string::npos);
  EXPECT_NE(r.body.find("# HELP abitmap_build_info"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE abitmap_index_queries counter"),
            std::string::npos);
}

TEST_F(HttpServerTest, StatsJsonIsValidJson) {
  FetchResult r = Get(server_.port(), "/stats.json");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_TRUE(test::IsValidJson(r.body)) << r.body;
  EXPECT_NE(r.body.find("\"counters\""), std::string::npos);
  EXPECT_NE(r.body.find(kStatsEnabled ? "\"enabled\": true"
                                      : "\"enabled\": false"),
            std::string::npos);
}

TEST_F(HttpServerTest, TracesJsonIsValidChromeTrace) {
  { AB_SPAN("http_test/marker"); }
  FetchResult r = Get(server_.port(), "/traces.json");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(test::IsValidJson(r.body)) << r.body;
  EXPECT_NE(r.body.find("\"traceEvents\""), std::string::npos);
  if (kStatsEnabled) {
    EXPECT_NE(r.body.find("http_test/marker"), std::string::npos);
  } else {
    EXPECT_NE(r.body.find("\"enabled\": false"), std::string::npos);
  }
}

TEST_F(HttpServerTest, RejectsUnknownPathAndMethod) {
  FetchResult not_found = Get(server_.port(), "/nope");
  ASSERT_TRUE(not_found.ok);
  EXPECT_EQ(not_found.status, 404);

  FetchResult post = Fetch(server_.port(), "POST /metrics HTTP/1.1");
  ASSERT_TRUE(post.ok);
  EXPECT_EQ(post.status, 405);
}

TEST_F(HttpServerTest, HeadOmitsBodyAndQueryStringIsStripped) {
  FetchResult head = Fetch(server_.port(), "HEAD /healthz HTTP/1.1");
  ASSERT_TRUE(head.ok);
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  // Content-Length still describes the GET body.
  EXPECT_NE(head.headers.find("Content-Length: 3"), std::string::npos);

  FetchResult query = Get(server_.port(), "/healthz?verbose=1");
  ASSERT_TRUE(query.ok);
  EXPECT_EQ(query.status, 200);
}

TEST_F(HttpServerTest, ServesDuringParallelWorkload) {
  // The acceptance scenario: a multi-threaded BuildParallel +
  // EvaluateParallel workload runs while a client scrapes the endpoints.
  std::atomic<bool> done{false};
  std::thread workload([&done]() {
    // Scale 10 keeps the build above BuildParallel's serial-fallback cell
    // floor, so the trace check below sees the parallel phases.
    bitmap::BinnedDataset dataset = data::MakeUniformDataset(21, 10);
    ab::AbConfig config;
    config.alpha = 8.0;
    util::ThreadPool pool(4);
    for (int iter = 0; iter < 3 && !done.load(); ++iter) {
      ab::AbIndex index =
          ab::AbIndex::BuildParallel(dataset, config, &pool);
      data::QueryGenParams qp;
      qp.num_queries = 5;
      qp.rows_queried = dataset.num_rows();
      for (const bitmap::BitmapQuery& q :
           data::GenerateQueries(dataset, qp)) {
        std::vector<bool> bits = index.EvaluateParallel(q, &pool);
        (void)bits;
      }
    }
    done.store(true);
  });
  int fetches = 0;
  while (!done.load() && fetches < 50) {
    FetchResult health = Get(server_.port(), "/healthz");
    ASSERT_TRUE(health.ok);
    EXPECT_EQ(health.status, 200);
    FetchResult metrics = Get(server_.port(), "/metrics");
    ASSERT_TRUE(metrics.ok);
    EXPECT_EQ(metrics.status, 200);
    ++fetches;
  }
  workload.join();
  EXPECT_GE(fetches, 1);
  // After the workload, the trace endpoint shows its phases (stats-on).
  FetchResult traces = Get(server_.port(), "/traces.json");
  ASSERT_TRUE(traces.ok);
  EXPECT_TRUE(test::IsValidJson(traces.body));
  if (kStatsEnabled) {
    EXPECT_NE(traces.body.find("ab/build/parallel"), std::string::npos);
    EXPECT_NE(traces.body.find("pool/task"), std::string::npos);
  }
}

TEST(HttpServerLifecycleTest, StopIsIdempotentAndRestartFails) {
  HttpServer server;
  RegisterObsEndpoints(&server);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.Start().ok());  // already started
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
}

TEST(HttpServerLifecycleTest, FixedPortConflictReportsError) {
  HttpServer a;
  ASSERT_TRUE(a.Start().ok());
  HttpServer::Options opts;
  opts.port = a.port();
  HttpServer b(opts);
  util::Status status = b.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bind"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace abitmap
