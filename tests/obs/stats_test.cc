// Tests of the observability layer's recording and compile-out contracts
// (src/obs/stats.h). The same file compiles in both configurations:
// assertions branch on obs::kStatsEnabled, so the stats-off tier-1 pass
// (tools/check.sh builds with -DAB_DISABLE_STATS=ON) verifies the
// zero-overhead half — macro arguments unevaluated, empty timer, zeroed
// snapshots — while the default build verifies the recording half.

#include <string>

#include "gtest/gtest.h"

#include "obs/export.h"
#include "obs/stats.h"

namespace abitmap {
namespace obs {
namespace {

// --- Compile-out contract -------------------------------------------------

TEST(StatsContractTest, MacroArgumentsEvaluatedOnlyWhenEnabled) {
  // The disabled macros must drop their arguments *unevaluated* — a stats
  // call site whose operands have side effects (or cost) compiles to
  // nothing. The enabled macros evaluate each argument exactly once.
  int evaluations = 0;
  AB_STATS_ADD(Counter::kAbCellsTested, (++evaluations, uint64_t{1}));
  AB_STATS_INC((++evaluations, Counter::kAbCellsTested));
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, (++evaluations, uint64_t{7}));
  EXPECT_EQ(evaluations, kStatsEnabled ? 3 : 0);
}

TEST(StatsContractTest, ScopedLatencyTimerIsEmptyWhenDisabled) {
  if (kStatsEnabled) {
    // Enabled: a histogram id plus a start timestamp, nothing more.
    EXPECT_LE(sizeof(ScopedLatencyTimer), 2 * sizeof(uint64_t));
  } else {
    // Disabled: an empty class — the scope costs one no-op constructor.
    EXPECT_EQ(sizeof(ScopedLatencyTimer), 1u);
  }
}

TEST(StatsContractTest, DisabledSnapshotIsAllZeros) {
  // Link-compatibility half of the contract: SnapshotStats exists in both
  // builds; with stats compiled out it returns zeroed data no matter how
  // much work ran before the call.
  AB_STATS_ADD(Counter::kAbCellsTested, 1000);
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 1234);
  StatsSnapshot snap = SnapshotStats();
  if (!kStatsEnabled) {
    for (size_t c = 0; c < kNumCounters; ++c) EXPECT_EQ(snap.counters[c], 0u);
    for (size_t h = 0; h < kNumHistograms; ++h) {
      EXPECT_EQ(snap.histograms[h].count, 0u);
      EXPECT_EQ(snap.histograms[h].sum, 0u);
    }
  }
}

// --- Recording (both halves guard on kStatsEnabled) -----------------------

TEST(StatsRecordingTest, CountersAccumulate) {
  ResetStats();
  AB_STATS_INC(Counter::kIndexQueries);
  AB_STATS_ADD(Counter::kAbCellsTested, 41);
  AB_STATS_INC(Counter::kAbCellsTested);
  StatsSnapshot snap = SnapshotStats();
  EXPECT_EQ(snap.counter(Counter::kIndexQueries), kStatsEnabled ? 1u : 0u);
  EXPECT_EQ(snap.counter(Counter::kAbCellsTested), kStatsEnabled ? 42u : 0u);
  EXPECT_EQ(snap.counter(Counter::kEngineQueries), 0u);
}

TEST(StatsRecordingTest, ResetClearsEverything) {
  AB_STATS_ADD(Counter::kIndexRowsEvaluated, 99);
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 99);
  ResetStats();
  StatsSnapshot snap = SnapshotStats();
  EXPECT_EQ(snap.counter(Counter::kIndexRowsEvaluated), 0u);
  EXPECT_EQ(snap.histogram(Histogram::kEvalRowsPerQuery).count, 0u);
}

TEST(StatsRecordingTest, HistogramPowerOfTwoBucketing) {
  ResetStats();
  // Bucket b holds [2^(b-1), 2^b - 1]; bucket 0 holds {0}.
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 0);     // bucket 0
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 1);     // bucket 1
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 2);     // bucket 2
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 3);     // bucket 2
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 1024);  // bucket 11
  StatsSnapshot snap = SnapshotStats();
  const HistogramSnapshot& h = snap.histogram(Histogram::kEvalRowsPerQuery);
  if (!kStatsEnabled) {
    EXPECT_EQ(h.count, 0u);
    return;
  }
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1030.0 / 5.0);
  // The median (3rd of 5) sits in bucket 2, upper bound 2^2 - 1 = 3; the
  // max lands in bucket 11, upper bound 2047.
  EXPECT_EQ(h.PercentileUpperBound(0.5), 3u);
  EXPECT_EQ(h.PercentileUpperBound(1.0), 2047u);
}

TEST(StatsRecordingTest, ScopedLatencyTimerRecordsOneSample) {
  ResetStats();
  { ScopedLatencyTimer timer(Histogram::kBuildLatencyNs); }
  StatsSnapshot snap = SnapshotStats();
  const HistogramSnapshot& h = snap.histogram(Histogram::kBuildLatencyNs);
  EXPECT_EQ(h.count, kStatsEnabled ? 1u : 0u);
}

// --- Names and export formats ---------------------------------------------

TEST(StatsExportTest, NamesAreDefinedAndDistinct) {
  for (size_t c = 0; c < kNumCounters; ++c) {
    const char* name = CounterName(static_cast<Counter>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    for (size_t d = c + 1; d < kNumCounters; ++d) {
      EXPECT_STRNE(name, CounterName(static_cast<Counter>(d)));
    }
  }
  for (size_t h = 0; h < kNumHistograms; ++h) {
    ASSERT_NE(HistogramName(static_cast<Histogram>(h)), nullptr);
  }
}

TEST(StatsExportTest, JsonContainsEveryCounter) {
  ResetStats();
  AB_STATS_ADD(Counter::kAbCellsTested, 7);
  std::string json = ToJson(SnapshotStats());
  for (size_t c = 0; c < kNumCounters; ++c) {
    EXPECT_NE(json.find(CounterName(static_cast<Counter>(c))),
              std::string::npos)
        << CounterName(static_cast<Counter>(c));
  }
  if (kStatsEnabled) {
    EXPECT_NE(json.find("\"ab_cells_tested\": 7"), std::string::npos) << json;
  }
}

TEST(StatsExportTest, PrometheusShapeIsCumulative) {
  ResetStats();
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 100);
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 100000);
  std::string prom = ToPrometheus(SnapshotStats());
  // Counters and histograms carry the exporter prefix; histograms emit
  // the cumulative _bucket/_sum/_count triplet.
  EXPECT_NE(prom.find("abitmap_ab_cells_tested"), std::string::npos);
  EXPECT_NE(prom.find("abitmap_query_latency_ns_bucket{le="),
            std::string::npos);
  EXPECT_NE(prom.find("abitmap_query_latency_ns_sum"), std::string::npos);
  EXPECT_NE(prom.find("abitmap_query_latency_ns_count"), std::string::npos);
  if (kStatsEnabled) {
    EXPECT_NE(prom.find("abitmap_query_latency_ns_count 2"),
              std::string::npos)
        << prom;
  }
}

TEST(StatsExportTest, TextRendersWithoutCrashing) {
  std::string text = ToText(SnapshotStats());
  EXPECT_GT(text.size(), 0u);
}

TEST(StatsExportTest, EveryMetricHasHelpText) {
  // The HELP strings live in positional arrays parallel to the Counter /
  // Histogram enums; a new enumerator without a matching entry leaves a
  // null (or empty) hole that %s renders as garbage. Assert every HELP
  // line carries real prose.
  std::string prom = ToPrometheus(SnapshotStats());
  size_t help_lines = 0;
  size_t pos = 0;
  while ((pos = prom.find("# HELP ", pos)) != std::string::npos) {
    size_t eol = prom.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = prom.substr(pos, eol - pos);
    // "# HELP abitmap_<name> <prose>." — prose is non-empty and not the
    // literal "(null)" glibc substitutes for a NULL %s argument.
    size_t name_end = line.find(' ', 7);
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string help = line.substr(name_end + 1);
    EXPECT_GT(help.size(), 3u) << line;
    EXPECT_EQ(help.find("(null)"), std::string::npos) << line;
    ++help_lines;
    pos = eol;
  }
  EXPECT_GE(help_lines, kNumCounters + kNumHistograms);
}

}  // namespace
}  // namespace obs
}  // namespace abitmap
