// Tests of the observability layer's recording and compile-out contracts
// (src/obs/stats.h). The same file compiles in both configurations:
// assertions branch on obs::kStatsEnabled, so the stats-off tier-1 pass
// (tools/check.sh builds with -DAB_DISABLE_STATS=ON) verifies the
// zero-overhead half — macro arguments unevaluated, empty timer, zeroed
// snapshots — while the default build verifies the recording half.

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "obs/export.h"
#include "obs/stats.h"

namespace abitmap {
namespace obs {
namespace {

// --- Compile-out contract -------------------------------------------------

TEST(StatsContractTest, MacroArgumentsEvaluatedOnlyWhenEnabled) {
  // The disabled macros must drop their arguments *unevaluated* — a stats
  // call site whose operands have side effects (or cost) compiles to
  // nothing. The enabled macros evaluate each argument exactly once.
  int evaluations = 0;
  AB_STATS_ADD(Counter::kAbCellsTested, (++evaluations, uint64_t{1}));
  AB_STATS_INC((++evaluations, Counter::kAbCellsTested));
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, (++evaluations, uint64_t{7}));
  EXPECT_EQ(evaluations, kStatsEnabled ? 3 : 0);
}

TEST(StatsContractTest, ScopedLatencyTimerIsEmptyWhenDisabled) {
  if (kStatsEnabled) {
    // Enabled: a histogram id plus a start timestamp, nothing more.
    EXPECT_LE(sizeof(ScopedLatencyTimer), 2 * sizeof(uint64_t));
  } else {
    // Disabled: an empty class — the scope costs one no-op constructor.
    EXPECT_EQ(sizeof(ScopedLatencyTimer), 1u);
  }
}

TEST(StatsContractTest, DisabledSnapshotIsAllZeros) {
  // Link-compatibility half of the contract: SnapshotStats exists in both
  // builds; with stats compiled out it returns zeroed data no matter how
  // much work ran before the call.
  AB_STATS_ADD(Counter::kAbCellsTested, 1000);
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 1234);
  StatsSnapshot snap = SnapshotStats();
  if (!kStatsEnabled) {
    for (size_t c = 0; c < kNumCounters; ++c) EXPECT_EQ(snap.counters[c], 0u);
    for (size_t h = 0; h < kNumHistograms; ++h) {
      EXPECT_EQ(snap.histograms[h].count, 0u);
      EXPECT_EQ(snap.histograms[h].sum, 0u);
    }
  }
}

// --- Recording (both halves guard on kStatsEnabled) -----------------------

TEST(StatsRecordingTest, CountersAccumulate) {
  ResetStats();
  AB_STATS_INC(Counter::kIndexQueries);
  AB_STATS_ADD(Counter::kAbCellsTested, 41);
  AB_STATS_INC(Counter::kAbCellsTested);
  StatsSnapshot snap = SnapshotStats();
  EXPECT_EQ(snap.counter(Counter::kIndexQueries), kStatsEnabled ? 1u : 0u);
  EXPECT_EQ(snap.counter(Counter::kAbCellsTested), kStatsEnabled ? 42u : 0u);
  EXPECT_EQ(snap.counter(Counter::kEngineQueries), 0u);
}

TEST(StatsRecordingTest, ResetClearsEverything) {
  AB_STATS_ADD(Counter::kIndexRowsEvaluated, 99);
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 99);
  ResetStats();
  StatsSnapshot snap = SnapshotStats();
  EXPECT_EQ(snap.counter(Counter::kIndexRowsEvaluated), 0u);
  EXPECT_EQ(snap.histogram(Histogram::kEvalRowsPerQuery).count, 0u);
}

TEST(StatsRecordingTest, HistogramPowerOfTwoBucketing) {
  ResetStats();
  // Bucket b holds [2^(b-1), 2^b - 1]; bucket 0 holds {0}.
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 0);     // bucket 0
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 1);     // bucket 1
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 2);     // bucket 2
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 3);     // bucket 2
  AB_STATS_HIST(Histogram::kEvalRowsPerQuery, 1024);  // bucket 11
  StatsSnapshot snap = SnapshotStats();
  const HistogramSnapshot& h = snap.histogram(Histogram::kEvalRowsPerQuery);
  if (!kStatsEnabled) {
    EXPECT_EQ(h.count, 0u);
    return;
  }
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1030.0 / 5.0);
  // The median (3rd of 5) sits in bucket 2, upper bound 2^2 - 1 = 3; the
  // max lands in bucket 11, upper bound 2047.
  EXPECT_EQ(h.PercentileUpperBound(0.5), 3u);
  EXPECT_EQ(h.PercentileUpperBound(1.0), 2047u);
}

TEST(StatsRecordingTest, ScopedLatencyTimerRecordsOneSample) {
  ResetStats();
  { ScopedLatencyTimer timer(Histogram::kBuildLatencyNs); }
  StatsSnapshot snap = SnapshotStats();
  const HistogramSnapshot& h = snap.histogram(Histogram::kBuildLatencyNs);
  EXPECT_EQ(h.count, kStatsEnabled ? 1u : 0u);
}

// --- Names and export formats ---------------------------------------------

TEST(StatsExportTest, NamesAreDefinedAndDistinct) {
  for (size_t c = 0; c < kNumCounters; ++c) {
    const char* name = CounterName(static_cast<Counter>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    for (size_t d = c + 1; d < kNumCounters; ++d) {
      EXPECT_STRNE(name, CounterName(static_cast<Counter>(d)));
    }
  }
  for (size_t h = 0; h < kNumHistograms; ++h) {
    ASSERT_NE(HistogramName(static_cast<Histogram>(h)), nullptr);
  }
}

TEST(StatsExportTest, JsonContainsEveryCounter) {
  ResetStats();
  AB_STATS_ADD(Counter::kAbCellsTested, 7);
  std::string json = ToJson(SnapshotStats());
  for (size_t c = 0; c < kNumCounters; ++c) {
    EXPECT_NE(json.find(CounterName(static_cast<Counter>(c))),
              std::string::npos)
        << CounterName(static_cast<Counter>(c));
  }
  if (kStatsEnabled) {
    EXPECT_NE(json.find("\"ab_cells_tested\": 7"), std::string::npos) << json;
  }
}

TEST(StatsExportTest, PrometheusShapeIsCumulative) {
  ResetStats();
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 100);
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 100000);
  std::string prom = ToPrometheus(SnapshotStats());
  // Counters and histograms carry the exporter prefix; histograms emit
  // the cumulative _bucket/_sum/_count triplet.
  EXPECT_NE(prom.find("abitmap_ab_cells_tested"), std::string::npos);
  EXPECT_NE(prom.find("abitmap_query_latency_ns_bucket{le="),
            std::string::npos);
  EXPECT_NE(prom.find("abitmap_query_latency_ns_sum"), std::string::npos);
  EXPECT_NE(prom.find("abitmap_query_latency_ns_count"), std::string::npos);
  if (kStatsEnabled) {
    EXPECT_NE(prom.find("abitmap_query_latency_ns_count 2"),
              std::string::npos)
        << prom;
  }
}

TEST(StatsExportTest, PrometheusHistogramsAreFormatCompliant) {
  // Locks in the exposition-format contract scrapers depend on: bucket
  // series are *cumulative* counts over increasing `le` bounds, the +Inf
  // bucket equals _count, and every histogram carries _sum plus one
  // HELP/TYPE pair. A regression to per-bucket (non-cumulative) counts
  // would silently corrupt every histogram_quantile() downstream.
  ResetStats();
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 3);
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 300);
  AB_STATS_HIST(Histogram::kQueryLatencyNs, 30000);
  AB_STATS_HIST(Histogram::kServeRequestLatencyNs, 1);
  std::string prom = ToPrometheus(SnapshotStats());

  struct Series {
    std::vector<double> les;      // le bound per bucket line, in file order
    std::vector<uint64_t> counts;
    bool has_inf = false;
    uint64_t inf_count = 0;
    uint64_t count_line = 0;
    bool has_sum = false;
    bool has_count = false;
    bool has_help = false;
    bool has_type_histogram = false;
  };
  std::map<std::string, Series> series;

  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      size_t name_start = 7;
      size_t name_end = line.find(' ', name_start);
      ASSERT_NE(name_end, std::string::npos) << line;
      std::string name = line.substr(name_start, name_end - name_start);
      if (line.rfind("# HELP ", 0) == 0) {
        series[name].has_help = true;
      } else if (line.compare(name_end, std::string::npos, " histogram") ==
                 0) {
        series[name].has_type_histogram = true;
      }
      continue;
    }
    size_t bucket_pos = line.find("_bucket{le=\"");
    if (bucket_pos != std::string::npos) {
      std::string name = line.substr(0, bucket_pos);
      size_t le_start = bucket_pos + 12;
      size_t le_end = line.find('"', le_start);
      ASSERT_NE(le_end, std::string::npos) << line;
      std::string le = line.substr(le_start, le_end - le_start);
      size_t value_pos = line.find("} ");
      ASSERT_NE(value_pos, std::string::npos) << line;
      uint64_t value = std::strtoull(line.c_str() + value_pos + 2, nullptr, 10);
      Series& s = series[name];
      if (le == "+Inf") {
        s.has_inf = true;
        s.inf_count = value;
      } else {
        s.les.push_back(std::strtod(le.c_str(), nullptr));
        s.counts.push_back(value);
      }
      continue;
    }
    size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    if (name.size() > 4 && name.compare(name.size() - 4, 4, "_sum") == 0) {
      series[name.substr(0, name.size() - 4)].has_sum = true;
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_count") == 0) {
      Series& s = series[name.substr(0, name.size() - 6)];
      s.has_count = true;
      s.count_line = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    }
  }

  size_t histograms_checked = 0;
  for (const auto& [name, s] : series) {
    if (s.les.empty() && !s.has_inf) continue;  // a counter, not a histogram
    SCOPED_TRACE(name);
    ++histograms_checked;
    EXPECT_TRUE(s.has_help);
    EXPECT_TRUE(s.has_type_histogram);
    EXPECT_TRUE(s.has_sum);
    EXPECT_TRUE(s.has_count);
    EXPECT_TRUE(s.has_inf);
    // +Inf bucket == _count: the exposition format's closing invariant.
    EXPECT_EQ(s.inf_count, s.count_line);
    for (size_t i = 1; i < s.les.size(); ++i) {
      // Strictly increasing bounds, cumulative (non-decreasing) counts.
      EXPECT_LT(s.les[i - 1], s.les[i]);
      EXPECT_LE(s.counts[i - 1], s.counts[i]);
    }
    if (!s.counts.empty()) {
      EXPECT_LE(s.counts.back(), s.inf_count);
    }
  }
  EXPECT_EQ(histograms_checked, kNumHistograms);
  if (kStatsEnabled) {
    EXPECT_EQ(series["abitmap_query_latency_ns"].count_line, 3u);
  }
}

TEST(StatsExportTest, TextRendersWithoutCrashing) {
  std::string text = ToText(SnapshotStats());
  EXPECT_GT(text.size(), 0u);
}

TEST(StatsExportTest, EveryMetricHasHelpText) {
  // The HELP strings live in positional arrays parallel to the Counter /
  // Histogram enums; a new enumerator without a matching entry leaves a
  // null (or empty) hole that %s renders as garbage. Assert every HELP
  // line carries real prose.
  std::string prom = ToPrometheus(SnapshotStats());
  size_t help_lines = 0;
  size_t pos = 0;
  while ((pos = prom.find("# HELP ", pos)) != std::string::npos) {
    size_t eol = prom.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = prom.substr(pos, eol - pos);
    // "# HELP abitmap_<name> <prose>." — prose is non-empty and not the
    // literal "(null)" glibc substitutes for a NULL %s argument.
    size_t name_end = line.find(' ', 7);
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string help = line.substr(name_end + 1);
    EXPECT_GT(help.size(), 3u) << line;
    EXPECT_EQ(help.find("(null)"), std::string::npos) << line;
    ++help_lines;
    pos = eol;
  }
  EXPECT_GE(help_lines, kNumCounters + kNumHistograms);
}

}  // namespace
}  // namespace obs
}  // namespace abitmap
