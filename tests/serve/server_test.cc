#include "serve/server.h"

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/workload.h"
#include "util/net.h"

namespace abitmap {
namespace serve {
namespace {

constexpr uint64_t kRows = 3000;

engine::HybridEngine MakeEngine() {
  engine::HybridEngine::Options options;
  options.binning.bins = 16;
  options.ab.alpha = 16;
  options.ab.level = ab::Level::kPerAttribute;
  options.num_threads = 2;  // exercise the pool path under TSan
  return engine::HybridEngine::Build(MakeSeedTable(kRows, 11), options);
}

/// A minimal blocking binary-protocol client for tests.
class Client {
 public:
  static Client Connect(uint16_t port) {
    util::StatusOr<int> fd = util::net::ConnectLoopback(port);
    AB_CHECK(fd.ok());
    util::net::SetRecvTimeout(fd.value(), 10000);
    return Client(fd.value());
  }

  explicit Client(int fd) : fd_(fd) {}
  ~Client() { Close(); }
  Client(Client&& o) : fd_(o.fd_), buffer_(std::move(o.buffer_)) {
    o.fd_ = -1;
  }
  Client(const Client&) = delete;

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendRaw(const std::string& bytes) {
    return util::net::SendAll(fd_, bytes.data(), bytes.size());
  }

  bool Send(const QueryRequest& request) {
    return SendRaw(EncodeQueryFrame(request));
  }

  /// Blocks for one response frame; false on timeout/close/bad frame.
  bool Receive(QueryResponse* response) {
    char chunk[16384];
    for (;;) {
      size_t consumed = 0;
      DecodeStatus st = DecodeResponseFrame(
          reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size(),
          64u << 20, response, &consumed);
      if (st == DecodeStatus::kOk) {
        buffer_.erase(0, consumed);
        return true;
      }
      if (st == DecodeStatus::kMalformed) return false;
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  bool RoundTrip(const QueryRequest& request, QueryResponse* response) {
    return Send(request) && Receive(response);
  }

  /// Reads until the peer closes; returns everything seen (HTTP mode).
  std::string ReadUntilClose() {
    std::string out = std::move(buffer_);
    buffer_.clear();
    char chunk[16384];
    for (;;) {
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) break;
      out.append(chunk, static_cast<size_t>(n));
    }
    return out;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class QueryServerTest : public ::testing::Test {
 protected:
  QueryServerTest() : engine_(MakeEngine()) {}

  QueryServer::Options DefaultOptions() {
    QueryServer::Options options;
    options.num_workers = 2;
    options.service.queue.max_batch = 16;
    options.service.queue.max_delay_us = 200;
    return options;
  }

  engine::HybridEngine engine_;
};

TEST_F(QueryServerTest, ConcurrentClientsGetBitIdenticalResults) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  TemplateOptions template_options;
  template_options.num_templates = 16;
  template_options.row_fraction = 0.05;
  template_options.count_only = false;  // compare full row-id lists
  std::vector<QueryRequest> templates =
      MakeQueryTemplates(kRows, template_options);

  // Reference answers computed directly against the engine.
  std::vector<std::vector<uint64_t>> expected;
  for (const QueryRequest& t : templates) {
    engine::EngineQuery q;
    q.predicates = t.predicates;
    q.rows = t.rows;
    q.exact = t.exact;
    expected.push_back(engine_.Execute(q).row_ids);
  }

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Client client = Client::Connect(server.port());
      ZipfSampler sampler(templates.size(), 0.9,
                          static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        size_t pick = sampler.Next();
        QueryRequest request = templates[pick];
        request.id = static_cast<uint32_t>(i + 1);
        QueryResponse response;
        if (!client.RoundTrip(request, &response) ||
            response.status != StatusCode::kOk ||
            response.id != request.id ||
            response.row_ids != expected[pick]) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST_F(QueryServerTest, PipelinedRequestsOnOneConnectionAllAnswer) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 10.0, 80.0});
  request.count_only = true;

  engine::EngineQuery direct;
  direct.predicates = request.predicates;
  uint64_t expected = engine_.Execute(direct).row_ids.size();

  Client client = Client::Connect(server.port());
  constexpr int kPipelined = 25;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    QueryRequest r = request;
    r.id = static_cast<uint32_t>(i + 1);
    burst += EncodeQueryFrame(r);
  }
  ASSERT_TRUE(client.SendRaw(burst));
  std::vector<bool> answered(kPipelined + 1, false);
  for (int i = 0; i < kPipelined; ++i) {
    QueryResponse response;
    ASSERT_TRUE(client.Receive(&response)) << i;
    EXPECT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(response.count, expected);
    ASSERT_GE(response.id, 1u);
    ASSERT_LE(response.id, static_cast<uint32_t>(kPipelined));
    EXPECT_FALSE(answered[response.id]) << "duplicate id " << response.id;
    answered[response.id] = true;
  }
  server.Stop();
}

TEST_F(QueryServerTest, HttpQueryMatchesEngineAndMetricsServe) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  engine::EngineQuery direct;
  direct.predicates.push_back(engine::ValuePredicate{0, 20.0, 60.0});
  uint64_t expected = engine_.Execute(direct).row_ids.size();

  {
    Client client = Client::Connect(server.port());
    std::string body =
        R"({"predicates":[{"attr":0,"lo":20,"hi":60}],"count_only":true})";
    std::string request = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    ASSERT_TRUE(client.SendRaw(request));
    std::string response = client.ReadUntilClose();
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
    EXPECT_NE(response.find("\"count\":" + std::to_string(expected)),
              std::string::npos)
        << response;
  }
  {
    Client client = Client::Connect(server.port());
    ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\n\r\n"));
    EXPECT_NE(client.ReadUntilClose().find("HTTP/1.1 200"),
              std::string::npos);
  }
  {
    Client client = Client::Connect(server.port());
    ASSERT_TRUE(client.SendRaw("GET /nope HTTP/1.1\r\n\r\n"));
    EXPECT_NE(client.ReadUntilClose().find("HTTP/1.1 404"),
              std::string::npos);
  }
  server.Stop();
}

TEST_F(QueryServerTest, HttpInsertRoundTripMakesRowsQueryable) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  auto http_post = [&](const std::string& path, const std::string& body) {
    Client client = Client::Connect(server.port());
    std::string request = "POST " + path +
                          " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    EXPECT_TRUE(client.SendRaw(request));
    return client.ReadUntilClose();
  };

  // Single-row insert: the new id continues the base numbering.
  std::string r1 = http_post("/insert", R"({"values":[45.5,17,3.2]})");
  EXPECT_NE(r1.find("HTTP/1.1 200"), std::string::npos) << r1;
  EXPECT_NE(r1.find("\"rows\":[" + std::to_string(kRows) + "]"),
            std::string::npos)
      << r1;
  EXPECT_NE(r1.find("\"total_rows\":" + std::to_string(kRows + 1)),
            std::string::npos)
      << r1;

  // Batch insert: ids in commit order.
  std::string r2 =
      http_post("/insert", R"({"rows":[[45.6,18,3.1],[45.7,19,3.0]]})");
  EXPECT_NE(r2.find("HTTP/1.1 200"), std::string::npos) << r2;
  EXPECT_NE(r2.find("\"rows\":[" + std::to_string(kRows + 1) + "," +
                    std::to_string(kRows + 2) + "]"),
            std::string::npos)
      << r2;

  // A client that saw the insert response can immediately query the new
  // rows by id — the explicit subset names only ingested ids.
  std::string query_body =
      R"({"predicates":[{"attr":0,"lo":45.0,"hi":46.0}],"rows":[)" +
      std::to_string(kRows) + "," + std::to_string(kRows + 1) + "," +
      std::to_string(kRows + 2) + R"(],"count_only":true})";
  std::string r3 = http_post("/query", query_body);
  EXPECT_NE(r3.find("HTTP/1.1 200"), std::string::npos) << r3;
  EXPECT_NE(r3.find("\"count\":3"), std::string::npos) << r3;

  // Rejections: wrong column count, malformed JSON, and no rows at all
  // are 400s, and none of them land a row.
  EXPECT_NE(http_post("/insert", R"({"values":[1,2]})").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_post("/insert", "{").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_post("/insert", "{}").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_EQ(engine_.TotalRows(), kRows + 3);
  EXPECT_TRUE(engine_.RowLive(kRows + 2));
  server.Stop();
}

TEST_F(QueryServerTest, LifecycleStartStopRestart) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.Start().ok());  // double start refused
  uint16_t first_port = server.port();
  {
    Client client = Client::Connect(first_port);
    QueryRequest request;
    request.predicates.push_back(engine::ValuePredicate{0, 0.0, 50.0});
    request.count_only = true;
    QueryResponse response;
    ASSERT_TRUE(client.RoundTrip(request, &response));
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent

  ASSERT_TRUE(server.Start().ok());
  {
    Client client = Client::Connect(server.port());
    QueryRequest request;
    request.predicates.push_back(engine::ValuePredicate{1, 0.0, 10.0});
    request.count_only = true;
    QueryResponse response;
    ASSERT_TRUE(client.RoundTrip(request, &response));
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
  server.Stop();
}

TEST_F(QueryServerTest, MalformedBinaryFrameGetsErrorFrameThenClose) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client = Client::Connect(server.port());
  // Valid magic, hostile declared length.
  std::string frame = EncodeQueryFrame(QueryRequest{});
  uint32_t huge = 1u << 30;
  std::string hostile = frame.substr(0, 4);
  hostile.append(reinterpret_cast<const char*>(&huge), 4);
  hostile += "xxxx";
  ASSERT_TRUE(client.SendRaw(hostile));
  QueryResponse response;
  ASSERT_TRUE(client.Receive(&response));
  EXPECT_EQ(response.status, StatusCode::kBadRequest);
  // The server closes after answering a protocol violation.
  char c;
  EXPECT_LE(::read(client.fd(), &c, 1), 0);
  server.Stop();
}

TEST_F(QueryServerTest, GarbageBytesAnsweredAsHttp400) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = Client::Connect(server.port());
  ASSERT_TRUE(client.SendRaw("total nonsense\r\n\r\n"));
  std::string response = client.ReadUntilClose();
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.Stop();
}

TEST_F(QueryServerTest, TruncatedFrameThenDisconnectDoesNotWedgeTheServer) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  {
    Client client = Client::Connect(server.port());
    std::string frame = EncodeQueryFrame(QueryRequest{});
    ASSERT_TRUE(client.SendRaw(frame.substr(0, frame.size() / 2)));
    // Abandon the connection mid-frame.
  }
  // The server must still answer on a fresh connection.
  Client client = Client::Connect(server.port());
  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 50.0});
  request.count_only = true;
  QueryResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response));
  EXPECT_EQ(response.status, StatusCode::kOk);
  server.Stop();
}

TEST_F(QueryServerTest, BackpressureSheds503UnderFlood) {
  QueryServer::Options options = DefaultOptions();
  options.service.queue.capacity = 2;
  options.service.queue.max_batch = 64;
  options.service.queue.max_delay_us = 200000;  // hold the window open
  QueryServer server(&engine_, options);
  ASSERT_TRUE(server.Start().ok());

  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 100.0});
  request.count_only = true;

  Client client = Client::Connect(server.port());
  constexpr int kFlood = 12;
  std::string burst;
  for (int i = 0; i < kFlood; ++i) {
    QueryRequest r = request;
    r.id = static_cast<uint32_t>(i + 1);
    burst += EncodeQueryFrame(r);
  }
  ASSERT_TRUE(client.SendRaw(burst));
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kFlood; ++i) {
    QueryResponse response;
    ASSERT_TRUE(client.Receive(&response)) << i;
    if (response.status == StatusCode::kOk) ++ok;
    if (response.status == StatusCode::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(ok + overloaded, kFlood);
  EXPECT_GE(overloaded, kFlood - 4);
  EXPECT_GE(ok, 2);
  server.Stop();
}

TEST_F(QueryServerTest, DeadlineExpiryAnsweredAs504Equivalent) {
  QueryServer::Options options = DefaultOptions();
  options.service.queue.max_batch = 64;
  options.service.queue.max_delay_us = 50000;  // 50 ms window
  QueryServer server(&engine_, options);
  ASSERT_TRUE(server.Start().ok());

  Client client = Client::Connect(server.port());
  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 100.0});
  request.deadline_ms = 1;
  QueryResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response));
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  server.Stop();
}

TEST_F(QueryServerTest, ConnectionLimitShedsExcessAccepts) {
  QueryServer::Options options = DefaultOptions();
  options.max_connections = 1;
  QueryServer server(&engine_, options);
  ASSERT_TRUE(server.Start().ok());

  Client first = Client::Connect(server.port());
  // Prove the first connection is fully registered before probing.
  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 50.0});
  request.count_only = true;
  QueryResponse response;
  ASSERT_TRUE(first.RoundTrip(request, &response));

  // The next accept must be shed: the socket closes without an answer.
  Client second = Client::Connect(server.port());
  ASSERT_TRUE(second.Send(request));
  EXPECT_FALSE(second.Receive(&response));

  // The first connection keeps working.
  ASSERT_TRUE(first.RoundTrip(request, &response));
  EXPECT_EQ(response.status, StatusCode::kOk);
  server.Stop();
}

TEST_F(QueryServerTest, LoadgenDrivesTheServerCleanly) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  TemplateOptions template_options;
  template_options.num_templates = 8;
  template_options.row_fraction = 0.02;
  std::vector<QueryRequest> templates =
      MakeQueryTemplates(kRows, template_options);

  LoadgenOptions loadgen;
  loadgen.port = server.port();
  loadgen.connections = 2;
  loadgen.duration_s = 0.5;
  util::StatusOr<LoadgenResult> result = RunLoadgen(templates, loadgen);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().ok, 0u);
  EXPECT_EQ(result.value().errors, 0u);
  EXPECT_GT(result.value().qps, 0.0);
  EXPECT_GT(result.value().p99_us, 0.0);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace abitmap
