#include "serve/batch_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace abitmap {
namespace serve {
namespace {

PendingQuery MakeQuery(uint32_t id) {
  PendingQuery q;
  q.request.id = id;
  q.enqueue_ns = MonotonicNowNs();
  q.done = [](QueryResponse) {};
  return q;
}

TEST(BatchQueueTest, FullBatchDispatchesWithoutWaitingForTheWindow) {
  BatchQueue::Options options;
  options.max_batch = 4;
  options.max_delay_us = 1000000;  // 1 s — a timing bug would hang here
  BatchQueue queue(options);
  for (uint32_t i = 0; i < 4; ++i) {
    PendingQuery q = MakeQuery(i);
    ASSERT_TRUE(queue.TryEnqueue(&q));
  }
  std::vector<PendingQuery> batch;
  uint64_t start = MonotonicNowNs();
  ASSERT_TRUE(queue.NextBatch(&batch));
  uint64_t elapsed_ms = (MonotonicNowNs() - start) / 1000000;
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(elapsed_ms, 500u);  // far below the 1 s window
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].request.id, i);
}

TEST(BatchQueueTest, PartialBatchDispatchesAfterTheDelayWindow) {
  BatchQueue::Options options;
  options.max_batch = 64;
  options.max_delay_us = 20000;  // 20 ms
  BatchQueue queue(options);
  PendingQuery q = MakeQuery(1);
  ASSERT_TRUE(queue.TryEnqueue(&q));
  std::vector<PendingQuery> batch;
  uint64_t start = MonotonicNowNs();
  ASSERT_TRUE(queue.NextBatch(&batch));
  uint64_t elapsed_us = (MonotonicNowNs() - start) / 1000;
  EXPECT_EQ(batch.size(), 1u);
  // The window is anchored to the enqueue time; allow generous slack
  // above but require that some waiting actually happened.
  EXPECT_GE(elapsed_us, 10000u);
}

TEST(BatchQueueTest, CapacityBoundsAdmission) {
  BatchQueue::Options options;
  options.capacity = 2;
  BatchQueue queue(options);
  PendingQuery a = MakeQuery(1), b = MakeQuery(2), c = MakeQuery(3);
  EXPECT_TRUE(queue.TryEnqueue(&a));
  EXPECT_TRUE(queue.TryEnqueue(&b));
  EXPECT_FALSE(queue.TryEnqueue(&c));
  EXPECT_EQ(queue.depth(), 2u);
  // The rejected query still owns its callback — the caller can respond.
  ASSERT_NE(c.done, nullptr);
}

TEST(BatchQueueTest, StopDrainsRemainingWithoutDelayThenSignalsExit) {
  BatchQueue::Options options;
  options.max_batch = 2;
  options.max_delay_us = 1000000;
  BatchQueue queue(options);
  for (uint32_t i = 0; i < 5; ++i) {
    PendingQuery q = MakeQuery(i);
    ASSERT_TRUE(queue.TryEnqueue(&q));
  }
  queue.Stop();
  PendingQuery late = MakeQuery(99);
  EXPECT_FALSE(queue.TryEnqueue(&late));

  std::vector<PendingQuery> batch;
  size_t total = 0;
  uint64_t start = MonotonicNowNs();
  while (queue.NextBatch(&batch)) {
    EXPECT_LE(batch.size(), 2u);
    total += batch.size();
  }
  EXPECT_EQ(total, 5u);
  // No delay windows after Stop: the drain is immediate.
  EXPECT_LT((MonotonicNowNs() - start) / 1000000, 500u);
}

TEST(BatchQueueTest, StoppedEmptyQueueReturnsFalsePromptly) {
  BatchQueue queue(BatchQueue::Options{});
  std::thread stopper([&queue]() { queue.Stop(); });
  std::vector<PendingQuery> batch;
  EXPECT_FALSE(queue.NextBatch(&batch));
  stopper.join();
}

TEST(BatchQueueTest, ConcurrentProducersDeliverEveryQueryExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr uint32_t kPerProducer = 500;
  BatchQueue::Options options;
  options.capacity = kProducers * kPerProducer;
  options.max_batch = 32;
  options.max_delay_us = 100;
  BatchQueue queue(options);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p]() {
      for (uint32_t i = 0; i < kPerProducer; ++i) {
        PendingQuery q = MakeQuery(static_cast<uint32_t>(p) * kPerProducer + i);
        while (!queue.TryEnqueue(&q)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<bool> seen(kProducers * kPerProducer, false);
  size_t total = 0;
  std::vector<PendingQuery> batch;
  while (total < kProducers * kPerProducer) {
    ASSERT_TRUE(queue.NextBatch(&batch));
    for (PendingQuery& q : batch) {
      ASSERT_LT(q.request.id, seen.size());
      EXPECT_FALSE(seen[q.request.id]) << "duplicate " << q.request.id;
      seen[q.request.id] = true;
    }
    total += batch.size();
  }
  for (std::thread& t : producers) t.join();
  queue.Stop();
  EXPECT_FALSE(queue.NextBatch(&batch));
}

}  // namespace
}  // namespace serve
}  // namespace abitmap
