#include "serve/query_service.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/stats.h"
#include "serve/workload.h"

namespace abitmap {
namespace serve {
namespace {

engine::HybridEngine MakeEngine(uint64_t rows) {
  engine::HybridEngine::Options options;
  options.binning.bins = 16;
  options.ab.alpha = 16;
  options.ab.level = ab::Level::kPerAttribute;
  options.num_threads = 1;  // keep unit tests single-threaded in the engine
  return engine::HybridEngine::Build(MakeSeedTable(rows, 11), options);
}

/// Blocks until the service delivers the response.
QueryResponse SubmitAndWait(QueryService* service, QueryRequest request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  QueryResponse out;
  service->Submit(std::move(request), [&](QueryResponse resp) {
    std::lock_guard<std::mutex> lock(mu);
    out = std::move(resp);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return ready; });
  return out;
}

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : engine_(MakeEngine(3000)) {}

  engine::HybridEngine engine_;
};

TEST_F(QueryServiceTest, AnswersMatchDirectEngineExecution) {
  QueryService::Options options;
  options.queue.max_delay_us = 100;
  QueryService service(&engine_, options);
  ASSERT_TRUE(service.Start().ok());

  QueryRequest request;
  request.id = 5;
  request.predicates.push_back(engine::ValuePredicate{0, 20.0, 60.0});
  request.predicates.push_back(engine::ValuePredicate{1, 5.0, 30.0});

  engine::EngineQuery direct;
  direct.predicates = request.predicates;
  std::vector<uint64_t> expected = engine_.Execute(direct).row_ids;

  QueryResponse response = SubmitAndWait(&service, request);
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.id, 5u);
  EXPECT_EQ(response.count, expected.size());
  EXPECT_EQ(response.row_ids, expected);
  EXPECT_STREQ(response.path, "exact");  // whole-relation query
  EXPECT_GE(response.batch_size, 1u);
  service.Stop();
}

TEST_F(QueryServiceTest, CountOnlySuppressesRowsButKeepsCount) {
  QueryService::Options options;
  options.queue.max_delay_us = 100;
  QueryService service(&engine_, options);
  ASSERT_TRUE(service.Start().ok());

  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 50.0});
  request.count_only = true;

  engine::EngineQuery direct;
  direct.predicates = request.predicates;
  size_t expected = engine_.Execute(direct).row_ids.size();

  QueryResponse response = SubmitAndWait(&service, request);
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.count, expected);
  EXPECT_TRUE(response.row_ids.empty());
  service.Stop();
}

TEST_F(QueryServiceTest, SchemaViolationsRejectSynchronouslyBeforeTheEngine) {
  QueryService service(&engine_, QueryService::Options{});
  ASSERT_TRUE(service.Start().ok());

  struct Case {
    QueryRequest request;
    const char* what;
  };
  std::vector<Case> cases;
  {
    QueryRequest r;
    r.predicates.push_back(engine::ValuePredicate{99, 0.0, 1.0});
    cases.push_back({r, "unknown attribute"});
  }
  {
    QueryRequest r;
    r.predicates.push_back(
        engine::ValuePredicate{0, std::nan(""), 1.0});
    cases.push_back({r, "NaN bound"});
  }
  {
    QueryRequest r;
    r.predicates.push_back(engine::ValuePredicate{0, 5.0, 1.0});
    cases.push_back({r, "lo > hi"});
  }
  {
    QueryRequest r;
    r.predicates.push_back(engine::ValuePredicate{0, 0.0, 1.0});
    r.rows = {1u << 30};
    cases.push_back({r, "row out of range"});
  }
  for (Case& c : cases) {
    bool called = false;
    service.Submit(c.request, [&](QueryResponse resp) {
      called = true;
      EXPECT_EQ(resp.status, StatusCode::kBadRequest) << c.what;
      EXPECT_FALSE(resp.error.empty()) << c.what;
    });
    // Rejections are synchronous — no dispatcher round trip.
    EXPECT_TRUE(called) << c.what;
  }
  service.Stop();
}

TEST_F(QueryServiceTest, SubmitAfterStopSaysShuttingDown) {
  QueryService service(&engine_, QueryService::Options{});
  ASSERT_TRUE(service.Start().ok());
  service.Stop();
  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 1.0});
  bool called = false;
  service.Submit(request, [&](QueryResponse resp) {
    called = true;
    EXPECT_EQ(resp.status, StatusCode::kShuttingDown);
  });
  EXPECT_TRUE(called);
}

TEST_F(QueryServiceTest, ExpiredDeadlineIsShedNotExecuted) {
  QueryService::Options options;
  // A long admission window guarantees the 1 ms deadline lapses while
  // the query waits for the window to close.
  options.queue.max_batch = 64;
  options.queue.max_delay_us = 50000;  // 50 ms
  QueryService service(&engine_, options);
  ASSERT_TRUE(service.Start().ok());

  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 100.0});
  request.deadline_ms = 1;
  QueryResponse response = SubmitAndWait(&service, request);
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  service.Stop();
}

TEST_F(QueryServiceTest, BackpressureRejectsWhenTheQueueIsFull) {
  QueryService::Options options;
  options.queue.capacity = 2;
  options.queue.max_batch = 64;
  options.queue.max_delay_us = 200000;  // hold the window open
  QueryService service(&engine_, options);
  ASSERT_TRUE(service.Start().ok());

  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 0.0, 100.0});
  request.count_only = true;

  std::atomic<int> ok{0}, overloaded{0}, pending{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kFlood = 10;
  pending = kFlood;
  for (int i = 0; i < kFlood; ++i) {
    service.Submit(request, [&](QueryResponse resp) {
      if (resp.status == StatusCode::kOk) ++ok;
      if (resp.status == StatusCode::kOverloaded) ++overloaded;
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return pending == 0; });
  }
  // The first queries fill the capacity-2 queue (possibly with the
  // dispatcher already consuming); the bulk of the flood must shed.
  EXPECT_GE(overloaded.load(), kFlood - 4);
  EXPECT_GE(ok.load(), 2);
  EXPECT_EQ(ok.load() + overloaded.load(), kFlood);
  service.Stop();
}

TEST_F(QueryServiceTest, DuplicateQueriesInABatchAreDedupedByTheEngine) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  QueryService::Options options;
  options.queue.max_batch = 16;
  options.queue.max_delay_us = 50000;  // accumulate the flood in one batch
  QueryService service(&engine_, options);
  ASSERT_TRUE(service.Start().ok());

  uint64_t dedup_before =
      obs::SnapshotStats().counter(obs::Counter::kEngineBatchDedupHits);

  QueryRequest request;
  request.predicates.push_back(engine::ValuePredicate{0, 10.0, 90.0});
  request.count_only = true;

  std::mutex mu;
  std::condition_variable cv;
  int pending = 8;
  uint64_t counts[8] = {0};
  for (int i = 0; i < 8; ++i) {
    QueryRequest r = request;
    r.id = static_cast<uint32_t>(i);
    service.Submit(r, [&, i](QueryResponse resp) {
      EXPECT_EQ(resp.status, StatusCode::kOk);
      counts[i] = resp.count;
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return pending == 0; });
  }
  for (int i = 1; i < 8; ++i) EXPECT_EQ(counts[i], counts[0]);
  uint64_t dedup_after =
      obs::SnapshotStats().counter(obs::Counter::kEngineBatchDedupHits);
  // All eight queries are identical; whatever batches they landed in,
  // at least some duplicates must have been collapsed.
  EXPECT_GT(dedup_after, dedup_before);
  service.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace abitmap
