// Socket-level tests of request tracing and stage timings end to end:
// client-supplied trace ids survive both wire protocols, server-minted
// ids are nonzero and distinct, want_timings echoes a breakdown whose
// queue + batch stages tile the server-side window, retained requests
// surface in /slow.json with their trace id, and concurrent pipelined
// requests never cross-attribute ids (the TSan serve suite runs this
// file, so the trace plumbing is also a race witness).

#include "serve/server.h"

#include <unistd.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/slowlog.h"
#include "obs/stats.h"
#include "serve/protocol.h"
#include "serve/workload.h"
#include "util/net.h"

namespace abitmap {
namespace serve {
namespace {

constexpr uint64_t kRows = 2000;

engine::HybridEngine MakeEngine() {
  engine::HybridEngine::Options options;
  options.binning.bins = 16;
  options.ab.alpha = 16;
  options.ab.level = ab::Level::kPerAttribute;
  options.num_threads = 2;
  return engine::HybridEngine::Build(MakeSeedTable(kRows, 11), options);
}

/// A minimal blocking binary-protocol client (same shape as
/// server_test.cc; each TU keeps its own copy in its anonymous
/// namespace).
class Client {
 public:
  static Client Connect(uint16_t port) {
    util::StatusOr<int> fd = util::net::ConnectLoopback(port);
    AB_CHECK(fd.ok());
    util::net::SetRecvTimeout(fd.value(), 10000);
    return Client(fd.value());
  }

  explicit Client(int fd) : fd_(fd) {}
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(Client&& o) : fd_(o.fd_), buffer_(std::move(o.buffer_)) {
    o.fd_ = -1;
  }
  Client(const Client&) = delete;

  bool SendRaw(const std::string& bytes) {
    return util::net::SendAll(fd_, bytes.data(), bytes.size());
  }

  bool Receive(QueryResponse* response) {
    char chunk[16384];
    for (;;) {
      size_t consumed = 0;
      DecodeStatus st = DecodeResponseFrame(
          reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size(),
          64u << 20, response, &consumed);
      if (st == DecodeStatus::kOk) {
        buffer_.erase(0, consumed);
        return true;
      }
      if (st == DecodeStatus::kMalformed) return false;
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  bool RoundTrip(const QueryRequest& request, QueryResponse* response) {
    return SendRaw(EncodeQueryFrame(request)) && Receive(response);
  }

  std::string ReadUntilClose() {
    std::string out = std::move(buffer_);
    buffer_.clear();
    char chunk[16384];
    for (;;) {
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) break;
      out.append(chunk, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : engine_(MakeEngine()) {}

  QueryServer::Options DefaultOptions() {
    QueryServer::Options options;
    options.num_workers = 2;
    options.service.queue.max_batch = 16;
    options.service.queue.max_delay_us = 200;
    options.telemetry_interval_ms = 0;  // no ticker noise in unit tests
    return options;
  }

  QueryRequest SmallQuery() {
    QueryRequest request;
    request.predicates.push_back(engine::ValuePredicate{0, 10.0, 60.0});
    request.count_only = true;
    return request;
  }

  engine::HybridEngine engine_;
};

TEST_F(TraceTest, BinaryTraceIdRoundTripsAndMintsWhenAbsent) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = Client::Connect(server.port());

  // Client-supplied id is echoed verbatim — full 64 bits, above 2^53.
  QueryRequest request = SmallQuery();
  request.id = 1;
  request.trace_id = 0xFEEDFACECAFEBEEFull;
  QueryResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response));
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.trace_id, 0xFEEDFACECAFEBEEFull);

  // trace_id = 0 asks the server to mint; minted ids are nonzero and
  // distinct across requests.
  request.trace_id = 0;
  request.id = 2;
  QueryResponse minted_a, minted_b;
  ASSERT_TRUE(client.RoundTrip(request, &minted_a));
  request.id = 3;
  ASSERT_TRUE(client.RoundTrip(request, &minted_b));
  EXPECT_NE(minted_a.trace_id, 0u);
  EXPECT_NE(minted_b.trace_id, 0u);
  EXPECT_NE(minted_a.trace_id, minted_b.trace_id);
  server.Stop();
}

TEST_F(TraceTest, BinaryTimingsTileTheServerWindow) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = Client::Connect(server.port());

  QueryRequest request = SmallQuery();
  request.id = 9;
  request.want_timings = true;
  QueryResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response));
  EXPECT_EQ(response.status, StatusCode::kOk);
  // Timings are protocol, not telemetry: present in both stats
  // configurations.
  ASSERT_TRUE(response.timings.has);
  const StageTimings& t = response.timings;
  EXPECT_GT(t.total_ns, 0u);
  // queue + batch tile the admission-to-done window by construction.
  EXPECT_EQ(t.queue_ns + t.batch_ns, t.total_ns);
  // Attributions stay inside their enclosing window.
  EXPECT_LE(t.engine_ns, t.batch_ns);
  EXPECT_LE(t.verify_ns, t.batch_ns);
  // Serialize/flush cannot describe themselves (causality): echoed 0.
  EXPECT_EQ(t.serialize_ns, 0u);
  EXPECT_EQ(t.flush_ns, 0u);

  // Without want_timings the frame stays lean.
  request.id = 10;
  request.want_timings = false;
  ASSERT_TRUE(client.RoundTrip(request, &response));
  EXPECT_FALSE(response.timings.has);
  server.Stop();
}

TEST_F(TraceTest, JsonTraceIdAndTimingsRoundTrip) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  auto http_post = [&](const std::string& body) {
    Client client = Client::Connect(server.port());
    std::string request = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    EXPECT_TRUE(client.SendRaw(request));
    return client.ReadUntilClose();
  };

  // Client-supplied id comes back; so does the stage breakdown.
  std::string echoed = http_post(
      R"({"predicates":[{"attr":0,"lo":10,"hi":60}],"count_only":true,)"
      R"("trace_id":424242,"timings":true})");
  EXPECT_NE(echoed.find("HTTP/1.1 200"), std::string::npos) << echoed;
  EXPECT_NE(echoed.find("\"trace_id\":424242"), std::string::npos) << echoed;
  EXPECT_NE(echoed.find("\"timings\":{\"decode_us\":"), std::string::npos)
      << echoed;
  EXPECT_NE(echoed.find("\"total_us\":"), std::string::npos) << echoed;

  // No trace_id in the body: the server mints a nonzero one.
  std::string minted = http_post(
      R"({"predicates":[{"attr":0,"lo":10,"hi":60}],"count_only":true})");
  EXPECT_NE(minted.find("\"trace_id\":"), std::string::npos) << minted;
  EXPECT_EQ(minted.find("\"trace_id\":0,"), std::string::npos) << minted;
  // And omits timings that were not asked for.
  EXPECT_EQ(minted.find("\"timings\""), std::string::npos) << minted;
  server.Stop();
}

TEST_F(TraceTest, SlowLogRetainsTheTraceId) {
  obs::ClearSlowLog();
  QueryServer::Options options = DefaultOptions();
  options.slow_threshold_ns = 0;  // retain every completed request
  QueryServer server(&engine_, options);
  ASSERT_TRUE(server.Start().ok());

  {
    Client client = Client::Connect(server.port());
    QueryRequest request = SmallQuery();
    request.id = 77;
    request.trace_id = 31337;
    QueryResponse response;
    ASSERT_TRUE(client.RoundTrip(request, &response));
    EXPECT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(response.trace_id, 31337u);
  }

  Client scraper = Client::Connect(server.port());
  ASSERT_TRUE(scraper.SendRaw("GET /slow.json HTTP/1.1\r\n\r\n"));
  std::string body = scraper.ReadUntilClose();
  EXPECT_NE(body.find("HTTP/1.1 200"), std::string::npos) << body;
  if (obs::kStatsEnabled) {
    EXPECT_NE(body.find("\"trace_id\": 31337"), std::string::npos) << body;
    EXPECT_NE(body.find("\"queue_ns\""), std::string::npos) << body;
  } else {
    EXPECT_NE(body.find("\"enabled\": false"), std::string::npos) << body;
  }
  server.Stop();
}

TEST_F(TraceTest, TimeSeriesEndpointServes) {
  QueryServer::Options options = DefaultOptions();
  options.telemetry_interval_ms = 50;
  QueryServer server(&engine_, options);
  ASSERT_TRUE(server.Start().ok());
  // Two ticker periods (the loop polls every 20 ms).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Client scraper = Client::Connect(server.port());
  ASSERT_TRUE(scraper.SendRaw("GET /timeseries.json HTTP/1.1\r\n\r\n"));
  std::string body = scraper.ReadUntilClose();
  EXPECT_NE(body.find("HTTP/1.1 200"), std::string::npos) << body;
  EXPECT_NE(body.find("\"samples\""), std::string::npos) << body;
  if (obs::kStatsEnabled) {
    EXPECT_NE(body.find("\"mono_ns\""), std::string::npos) << body;
  }
  server.Stop();
}

TEST_F(TraceTest, MetricsExposeIngestGauges) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client scraper = Client::Connect(server.port());
  ASSERT_TRUE(scraper.SendRaw("GET /metrics HTTP/1.1\r\n\r\n"));
  std::string body = scraper.ReadUntilClose();
  EXPECT_NE(body.find("HTTP/1.1 200"), std::string::npos) << body;
  // The gauge block is live state, served in both stats configurations.
  EXPECT_NE(body.find("abitmap_engine_total_rows"), std::string::npos) << body;
  EXPECT_NE(body.find("abitmap_engine_delta_live"), std::string::npos);
  EXPECT_NE(body.find("abitmap_engine_delta_worst_fp"), std::string::npos);
  EXPECT_NE(body.find("abitmap_engine_delta_rebuild_running"),
            std::string::npos);
  EXPECT_NE(body.find("abitmap_serve_slow_threshold_ns"), std::string::npos);
  EXPECT_NE(body.find("# HELP abitmap_engine_delta_live"), std::string::npos);
  server.Stop();
}

TEST_F(TraceTest, ConcurrentPipelinedRequestsNeverCrossAttribute) {
  QueryServer server(&engine_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());

  // Each client pipelines a burst where trace_id is derived from the
  // request id; any cross-attribution (batching mixes requests from all
  // connections into shared dispatch batches) breaks the relation.
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Client client = Client::Connect(server.port());
      std::string burst;
      for (int i = 0; i < kPerClient; ++i) {
        QueryRequest request;
        request.predicates.push_back(
            engine::ValuePredicate{0, 5.0 * (i % 8), 60.0});
        request.count_only = true;
        request.want_timings = (i % 2) == 0;
        request.id = static_cast<uint32_t>(i + 1);
        request.trace_id = (static_cast<uint64_t>(c + 1) << 32) |
                           static_cast<uint64_t>(i + 1);
        burst += EncodeQueryFrame(request);
      }
      if (!client.SendRaw(burst)) {
        ++failures;
        return;
      }
      std::set<uint64_t> seen;
      for (int i = 0; i < kPerClient; ++i) {
        QueryResponse response;
        if (!client.Receive(&response)) {
          ++failures;
          return;
        }
        uint64_t expected = (static_cast<uint64_t>(c + 1) << 32) |
                            static_cast<uint64_t>(response.id);
        if (response.trace_id != expected || !seen.insert(expected).second) {
          ++failures;
          return;
        }
        if (((response.id - 1) % 2) == 0 && !response.timings.has) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace abitmap
