#include "serve/protocol.h"

#include <cstring>
#include <random>
#include <string>

#include "gtest/gtest.h"

namespace abitmap {
namespace serve {
namespace {

constexpr size_t kMaxFrame = 1 << 20;

QueryRequest SampleRequest() {
  QueryRequest q;
  q.id = 42;
  q.exact = true;
  q.count_only = true;
  q.deadline_ms = 75;
  q.predicates.push_back(engine::ValuePredicate{0, 12.5, 60.0});
  q.predicates.push_back(engine::ValuePredicate{2, -1.0, 4.5});
  q.rows = {3, 17, 99, 12345};
  return q;
}

TEST(ProtocolTest, QueryFrameRoundTrips) {
  QueryRequest in = SampleRequest();
  std::string frame = EncodeQueryFrame(in);

  QueryRequest out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                             frame.size(), kMaxFrame, &out, &consumed, &error),
            DecodeStatus::kOk)
      << error;
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.exact, in.exact);
  EXPECT_EQ(out.count_only, in.count_only);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  ASSERT_EQ(out.predicates.size(), in.predicates.size());
  for (size_t i = 0; i < in.predicates.size(); ++i) {
    EXPECT_EQ(out.predicates[i].attr, in.predicates[i].attr);
    EXPECT_EQ(out.predicates[i].lo, in.predicates[i].lo);
    EXPECT_EQ(out.predicates[i].hi, in.predicates[i].hi);
  }
  EXPECT_EQ(out.rows, in.rows);
}

TEST(ProtocolTest, ResponseFrameRoundTrips) {
  QueryResponse in;
  in.id = 7;
  in.status = StatusCode::kOk;
  in.count = 3;
  in.row_ids = {5, 9, 1024};
  std::string frame = EncodeResponseFrame(in);

  QueryResponse out;
  size_t consumed = 0;
  ASSERT_EQ(
      DecodeResponseFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                          frame.size(), kMaxFrame, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.count, in.count);
  EXPECT_EQ(out.row_ids, in.row_ids);
}

TEST(ProtocolTest, ErrorResponseCarriesMessageNotRows) {
  QueryResponse in;
  in.id = 1;
  in.status = StatusCode::kBadRequest;
  in.error = "unknown attribute 9";
  in.row_ids = {1, 2, 3};  // must be suppressed for non-ok
  std::string frame = EncodeResponseFrame(in);

  QueryResponse out;
  size_t consumed = 0;
  ASSERT_EQ(
      DecodeResponseFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                          frame.size(), kMaxFrame, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.status, StatusCode::kBadRequest);
  EXPECT_EQ(out.error, "unknown attribute 9");
  EXPECT_TRUE(out.row_ids.empty());
}

TEST(ProtocolTest, EveryPrefixOfAValidFrameNeedsMore) {
  std::string frame = EncodeQueryFrame(SampleRequest());
  for (size_t len = 0; len < frame.size(); ++len) {
    QueryRequest out;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(
        DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()), len,
                         kMaxFrame, &out, &consumed, &error),
        DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(ProtocolTest, BadMagicIsMalformed) {
  std::string frame = EncodeQueryFrame(SampleRequest());
  frame[0] = 'X';
  QueryRequest out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                             frame.size(), kMaxFrame, &out, &consumed, &error),
            DecodeStatus::kMalformed);
}

TEST(ProtocolTest, HostileLengthPrefixIsRejectedBeforeAllocation) {
  // Header declares a 2 GiB payload; the decoder must refuse based on the
  // limit without waiting for (or allocating) the bytes.
  std::string frame = EncodeQueryFrame(SampleRequest());
  uint32_t huge = 1u << 31;
  std::memcpy(&frame[4], &huge, 4);
  QueryRequest out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                             frame.size(), kMaxFrame, &out, &consumed, &error),
            DecodeStatus::kMalformed);
  EXPECT_NE(error.find("size limit"), std::string::npos);
}

TEST(ProtocolTest, PayloadElementCountMismatchIsMalformed) {
  // Declare one more row than the payload carries.
  QueryRequest in = SampleRequest();
  std::string frame = EncodeQueryFrame(in);
  uint32_t bad_rows = static_cast<uint32_t>(in.rows.size()) + 1;
  std::memcpy(&frame[kFrameHeaderBytes + 12], &bad_rows, 4);
  QueryRequest out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                             frame.size(), kMaxFrame, &out, &consumed, &error),
            DecodeStatus::kMalformed);
}

TEST(ProtocolTest, UnknownFlagsAreMalformed) {
  std::string frame = EncodeQueryFrame(SampleRequest());
  frame[kFrameHeaderBytes + 4] = static_cast<char>(0x80);
  QueryRequest out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                             frame.size(), kMaxFrame, &out, &consumed, &error),
            DecodeStatus::kMalformed);
}

TEST(ProtocolTest, FuzzedGarbageNeverDecodesAsOkAndNeverCrashes) {
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng() % 256;
    std::string buf(len, '\0');
    for (char& c : buf) c = static_cast<char>(rng());
    QueryRequest out;
    size_t consumed = 0;
    std::string error;
    DecodeStatus st =
        DecodeQueryFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                         buf.size(), kMaxFrame, &out, &consumed, &error);
    // Random bytes essentially never start with the magic; whatever the
    // verdict, the decoder must not crash or read out of bounds (ASan
    // enforces the latter in the sanitizer config).
    EXPECT_NE(st, DecodeStatus::kOk);
  }
}

TEST(ProtocolTest, FuzzedBitFlipsOnValidFramesNeverCrash) {
  std::string valid = EncodeQueryFrame(SampleRequest());
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string frame = valid;
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[rng() % frame.size()] ^= static_cast<char>(1u << (rng() % 8));
    }
    QueryRequest out;
    size_t consumed = 0;
    std::string error;
    DecodeStatus st =
        DecodeQueryFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                         frame.size(), kMaxFrame, &out, &consumed, &error);
    if (st == DecodeStatus::kOk) {
      // A flip that survives validation must still report a fully
      // consumed, internally consistent message.
      EXPECT_EQ(consumed, frame.size());
    }
  }
}

TEST(ProtocolJsonTest, FullObjectParses) {
  QueryRequest out;
  std::string error;
  ASSERT_TRUE(ParseJsonQuery(
      R"({"predicates":[{"attr":1,"lo":2.5,"hi":7.25},{"attr":0,"lo":-3,"hi":3}],)"
      R"("rows":[1,5,900],"exact":false,"count_only":true,)"
      R"("deadline_ms":50,"id":9})",
      &out, &error))
      << error;
  ASSERT_EQ(out.predicates.size(), 2u);
  EXPECT_EQ(out.predicates[0].attr, 1u);
  EXPECT_EQ(out.predicates[0].lo, 2.5);
  EXPECT_EQ(out.predicates[0].hi, 7.25);
  EXPECT_EQ(out.rows, (std::vector<uint64_t>{1, 5, 900}));
  EXPECT_FALSE(out.exact);
  EXPECT_TRUE(out.count_only);
  EXPECT_EQ(out.deadline_ms, 50u);
  EXPECT_EQ(out.id, 9u);
}

TEST(ProtocolJsonTest, DefaultsAndUnknownKeys) {
  QueryRequest out;
  std::string error;
  ASSERT_TRUE(ParseJsonQuery(
      R"({"predicates":[{"attr":0,"lo":1,"hi":2,"comment":"hot"}],)"
      R"("client":{"nested":[1,2,{"deep":true}]}})",
      &out, &error))
      << error;
  EXPECT_TRUE(out.exact);
  EXPECT_FALSE(out.count_only);
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(out.deadline_ms, 0u);
  ASSERT_EQ(out.predicates.size(), 1u);
}

TEST(ProtocolJsonTest, WhitespaceTolerant) {
  QueryRequest out;
  std::string error;
  ASSERT_TRUE(ParseJsonQuery(
      " {\n \"predicates\" : [ { \"attr\" : 0 , \"lo\" : 1 , \"hi\" : 2 } ]"
      " }\n",
      &out, &error))
      << error;
  ASSERT_EQ(out.predicates.size(), 1u);
}

TEST(ProtocolJsonTest, MalformedInputsAreRejected) {
  const char* bad[] = {
      "",
      "null",
      "[]",
      "{",
      "{\"predicates\":}",
      "{\"predicates\":[{]}",
      "{\"predicates\":[{\"attr\":-1,\"lo\":0,\"hi\":1}]}",
      "{\"predicates\":[{\"attr\":1e12,\"lo\":0,\"hi\":1}]}",
      "{\"rows\":[-5]}",
      "{\"rows\":[1.5]}",
      "{\"exact\":\"yes\"}",
      "{\"deadline_ms\":-2}",
      "{} trailing",
      "{\"a\":\"unterminated}",
      "{\"predicates\":[{\"attr\":0,\"lo\":0,\"hi\":1}]}}",
  };
  for (const char* body : bad) {
    QueryRequest out;
    std::string error;
    EXPECT_FALSE(ParseJsonQuery(body, &out, &error)) << body;
    EXPECT_FALSE(error.empty()) << body;
  }
}

TEST(ProtocolJsonTest, FuzzedBodiesNeverCrash) {
  std::mt19937_64 rng(777);
  const char alphabet[] = "{}[]\":,.0123456789eE+-truefalsnx \\\"";
  for (int trial = 0; trial < 3000; ++trial) {
    size_t len = rng() % 120;
    std::string body(len, '\0');
    for (char& c : body) {
      c = alphabet[rng() % (sizeof(alphabet) - 1)];
    }
    QueryRequest out;
    std::string error;
    ParseJsonQuery(body, &out, &error);  // must terminate without crashing
  }
}

TEST(ProtocolJsonTest, ResponseRendering) {
  QueryResponse resp;
  resp.id = 3;
  resp.status = StatusCode::kOk;
  resp.count = 2;
  resp.row_ids = {10, 20};
  resp.path = "ab";
  resp.backend = "ab";
  resp.batch_size = 4;
  resp.latency_us = 123.4;
  std::string json = ResponseToJson(resp);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":[10,20]"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\":4"), std::string::npos);

  QueryResponse err;
  err.status = StatusCode::kOverloaded;
  err.error = "queue \"full\"\n";
  std::string ejson = ResponseToJson(err);
  EXPECT_NE(ejson.find("\"status\":\"overloaded\""), std::string::npos);
  EXPECT_NE(ejson.find("queue \\\"full\\\"\\n"), std::string::npos);
  EXPECT_EQ(ejson.find("\"rows\""), std::string::npos);
}

TEST(ProtocolTest, HttpStatusMapping) {
  EXPECT_EQ(HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFor(StatusCode::kBadRequest), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kOverloaded), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(HttpStatusFor(StatusCode::kShuttingDown), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInternal), 500);
}

}  // namespace
}  // namespace serve
}  // namespace abitmap
