// The paper's headline claims, each verified end-to-end on a scaled-down
// evaluation dataset. This file is the executable summary of
// EXPERIMENTS.md: if a refactor breaks any property the paper promises,
// it fails here with the claim spelled out.

#include <functional>
#include <random>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "data/query_gen.h"
#include "util/stopwatch.h"
#include "wah/wah_query.h"

namespace abitmap {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Uniform dataset at 1/5 scale: 20,000 rows, 2 attrs x 50 bins.
    dataset_ = new bitmap::BinnedDataset(
        data::MakeUniformDataset(1234, /*scale=*/5));
    table_ = new bitmap::BitmapTable(bitmap::BitmapTable::Build(*dataset_));
    wah_ = new wah::WahIndex(wah::WahIndex::Build(*table_));
    ab::AbConfig cfg;
    cfg.level = ab::Level::kPerColumn;  // the paper's uniform choice
    cfg.alpha = 16;
    ab_ = new ab::AbIndex(ab::AbIndex::Build(*dataset_, cfg));
  }
  static void TearDownTestSuite() {
    delete ab_;
    delete wah_;
    delete table_;
    delete dataset_;
  }

  static bitmap::BinnedDataset* dataset_;
  static bitmap::BitmapTable* table_;
  static wah::WahIndex* wah_;
  static ab::AbIndex* ab_;
};

bitmap::BinnedDataset* PaperClaimsTest::dataset_ = nullptr;
bitmap::BitmapTable* PaperClaimsTest::table_ = nullptr;
wah::WahIndex* PaperClaimsTest::wah_ = nullptr;
ab::AbIndex* PaperClaimsTest::ab_ = nullptr;

/// Wall-clock comparisons below are load-sensitive: when ctest runs the
/// suite in parallel on a small host, a descheduled measurement loop can
/// invert an otherwise-robust ordering. Retrying the whole measurement a
/// few times keeps the claims meaningful (a real regression fails every
/// attempt) without flaking under CI contention.
bool RetryTiming(const std::function<bool()>& attempt, int tries = 3) {
  for (int i = 0; i < tries; ++i) {
    if (attempt()) return true;
  }
  return false;
}

// "False misses are guaranteed not to occur" — abstract.
TEST_F(PaperClaimsTest, NoFalseNegativesEver) {
  data::QueryGenParams qp;
  qp.num_queries = 50;
  qp.rows_queried = 2000;
  qp.seed = 1;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(*dataset_, qp)) {
    data::QueryAccuracy acc =
        data::CompareResults(table_->Evaluate(q), ab_->Evaluate(q));
    ASSERT_EQ(acc.false_negatives, 0u);
    ASSERT_EQ(acc.recall(), 1.0);
  }
}

// "The proposed scheme achieves accurate results (90%-100%)" — abstract.
TEST_F(PaperClaimsTest, PrecisionAtLeastNinetyPercent) {
  data::QueryGenParams qp;
  qp.num_queries = 100;
  qp.rows_queried = 1000;
  qp.seed = 2;
  data::BatchAccuracy batch;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(*dataset_, qp)) {
    batch.Add(data::CompareResults(table_->Evaluate(q), ab_->Evaluate(q)));
  }
  EXPECT_GE(batch.precision(), 0.90);
}

// "AB can always be constructed using less space than WAH" — Section 6.1
// (for the uniform dataset at alpha=16, less than half).
TEST_F(PaperClaimsTest, AbSmallerThanWah) {
  EXPECT_LT(ab_->SizeInBytes(), wah_->SizeInBytes());
}

// "Retrieval cost is O(c) where c is the cardinality of the subset" —
// contribution 2: time grows with the queried rows, not the relation.
TEST_F(PaperClaimsTest, AbCostScalesWithSubsetNotRelation) {
  data::QueryGenParams qp;
  qp.num_queries = 40;
  qp.seed = 3;
  qp.rows_queried = 100;
  std::vector<bitmap::BitmapQuery> small = data::GenerateQueries(*dataset_, qp);
  qp.rows_queried = 10000;
  std::vector<bitmap::BitmapQuery> large = data::GenerateQueries(*dataset_, qp);

  auto time_of = [&](const std::vector<bitmap::BitmapQuery>& qs) {
    uint64_t sink = 0;
    for (const auto& q : qs) sink += ab_->Evaluate(q)[0];  // warm-up
    util::Stopwatch timer;
    for (const auto& q : qs) sink += ab_->Evaluate(q)[0];
    double ms = timer.ElapsedMillis();
    return ms + (sink == 0xFFFFFFFF ? 1e-9 : 0);
  };
  // 100x more rows must cost much more than a constant-time structure
  // would show (>10x) — i.e. the cost follows the subset size...
  EXPECT_TRUE(RetryTiming(
      [&] { return time_of(large) > time_of(small) * 10; }));
}

// ...and the WAH bit-wise phase is constant in the subset size.
TEST_F(PaperClaimsTest, WahCostIndependentOfSubset) {
  data::QueryGenParams qp;
  qp.num_queries = 40;
  qp.seed = 4;
  qp.rows_queried = 100;
  std::vector<bitmap::BitmapQuery> small = data::GenerateQueries(*dataset_, qp);
  qp.rows_queried = 10000;
  std::vector<bitmap::BitmapQuery> large = data::GenerateQueries(*dataset_, qp);
  auto time_of = [&](const std::vector<bitmap::BitmapQuery>& qs) {
    uint64_t sink = 0;
    for (const auto& q : qs) sink += wah_->ExecuteBitwise(q).NumWords();
    util::Stopwatch timer;
    for (const auto& q : qs) sink += wah_->ExecuteBitwise(q).NumWords();
    double ms = timer.ElapsedMillis();
    return ms + (sink == 0xFFFFFFFF ? 1e-9 : 0);
  };
  EXPECT_TRUE(RetryTiming(
      [&] { return time_of(large) < time_of(small) * 3; }));  // flat up to noise
}

// "Queries that only ask for a few rows": AB beats the WAH bit-wise phase
// outright on a 100-row query (Figure 14's left edge).
TEST_F(PaperClaimsTest, AbFasterOnSmallRowSubsets) {
  data::QueryGenParams qp;
  qp.num_queries = 50;
  qp.rows_queried = 100;
  qp.seed = 5;
  std::vector<bitmap::BitmapQuery> queries =
      data::GenerateQueries(*dataset_, qp);
  uint64_t sink = 0;
  for (const auto& q : queries) {
    sink += ab_->Evaluate(q)[0];
    sink += wah_->ExecuteBitwise(q).NumWords();
  }
  EXPECT_TRUE(RetryTiming([&] {
    util::Stopwatch ab_timer;
    for (const auto& q : queries) sink += ab_->Evaluate(q)[0];
    double ab_ms = ab_timer.ElapsedMillis();
    util::Stopwatch wah_timer;
    for (const auto& q : queries) sink += wah_->ExecuteBitwise(q).NumWords();
    double wah_ms = wah_timer.ElapsedMillis();
    if (sink == 0xFFFFFFFF) std::printf(" ");
    return ab_ms < wah_ms;
  }));
}

// "For applications requiring exact answers, false positives can be
// pruned in a second step" — and recall 1.0 makes the pruned result exact.
TEST_F(PaperClaimsTest, PruningYieldsExactAnswers) {
  data::QueryGenParams qp;
  qp.num_queries = 20;
  qp.rows_queried = 1500;
  qp.seed = 6;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(*dataset_, qp)) {
    std::vector<bool> approx = ab_->Evaluate(q);
    std::vector<bool> pruned(approx.size(), false);
    for (size_t i = 0; i < approx.size(); ++i) {
      if (!approx[i]) continue;
      uint64_t row = q.rows[i];
      bool keep = true;
      for (const bitmap::AttributeRange& r : q.ranges) {
        uint32_t v = dataset_->values[r.attr][row];
        if (v < r.lo_bin || v > r.hi_bin) {
          keep = false;
          break;
        }
      }
      pruned[i] = keep;
    }
    ASSERT_EQ(pruned, table_->Evaluate(q));
  }
}

// "The false positive rate can be estimated and controlled" — abstract.
TEST_F(PaperClaimsTest, FalsePositiveRateIsControlled) {
  // The per-filter expected FP (from actual load) stays within 2x of the
  // design target implied by alpha=16 with the chosen k.
  for (size_t f = 0; f < ab_->num_filters(); ++f) {
    const ab::ApproximateBitmap& filter = ab_->filter(f);
    double design = ab::FalsePositiveRate(
        static_cast<double>(filter.size_bits()) /
            std::max<uint64_t>(filter.insertions(), 1),
        filter.k());
    EXPECT_LE(filter.ExpectedFalsePositiveRate(), design * 2 + 1e-9) << f;
  }
}

}  // namespace
}  // namespace abitmap
