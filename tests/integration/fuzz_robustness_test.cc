// Randomized robustness tests: deserializers must reject or tolerate — but
// never crash on — arbitrarily corrupted input. Each trial serializes a
// valid structure, applies random byte mutations/truncations, and feeds
// the result back. A mutation may survive validation (it can hit padding
// or produce a different-but-valid structure); the contract under test is
// memory safety plus structural invariants of whatever is accepted.

#include <random>

#include "gtest/gtest.h"

#include "bbc/bbc_vector.h"
#include "core/ab_index.h"
#include "data/generators.h"
#include "util/byte_io.h"
#include "util/file_io.h"
#include "wah/wah_vector.h"

namespace abitmap {
namespace {

std::vector<uint8_t> Mutate(const std::vector<uint8_t>& bytes,
                            std::mt19937_64& rng) {
  std::vector<uint8_t> out = bytes;
  switch (rng() % 3) {
    case 0: {  // flip 1-4 random bits
      int flips = 1 + rng() % 4;
      for (int i = 0; i < flips && !out.empty(); ++i) {
        out[rng() % out.size()] ^= uint8_t{1} << (rng() % 8);
      }
      break;
    }
    case 1: {  // truncate
      if (!out.empty()) out.resize(rng() % out.size());
      break;
    }
    default: {  // splice random garbage into the middle
      size_t pos = out.empty() ? 0 : rng() % out.size();
      int count = 1 + rng() % 16;
      for (int i = 0; i < count; ++i) {
        out.insert(out.begin() + pos, static_cast<uint8_t>(rng()));
      }
      break;
    }
  }
  return out;
}

TEST(FuzzRobustnessTest, WahDeserializeNeverCrashes) {
  std::mt19937_64 rng(1);
  util::BitVector bits(5000);
  for (int i = 0; i < 700; ++i) bits.Set(rng() % 5000);
  wah::WahVector original = wah::WahVector::Compress(bits);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    wah::WahVector back;
    if (wah::WahVector::Deserialize(&r, &back).ok()) {
      // Whatever was accepted must be internally consistent.
      EXPECT_EQ(back.Decompress().size(), back.size());
      EXPECT_LE(back.CountOnes(), back.size());
    }
  }
}

TEST(FuzzRobustnessTest, BbcDeserializeNeverCrashes) {
  std::mt19937_64 rng(2);
  util::BitVector bits(4000);
  for (int i = 0; i < 900; ++i) bits.Set(rng() % 4000);
  bbc::BbcVector original = bbc::BbcVector::Compress(bits);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    bbc::BbcVector back;
    if (bbc::BbcVector::Deserialize(&r, &back).ok()) {
      EXPECT_EQ(back.Decompress().size(), back.size());
    }
  }
}

TEST(FuzzRobustnessTest, BitVectorDeserializeNeverCrashes) {
  std::mt19937_64 rng(3);
  util::BitVector original(777);
  for (int i = 0; i < 100; ++i) original.Set(rng() % 777);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    util::BitVector back;
    if (util::BitVector::Deserialize(&r, &back).ok()) {
      EXPECT_LE(back.Count(), back.size());
    }
  }
}

TEST(FuzzRobustnessTest, AbIndexDeserializeNeverCrashes) {
  std::mt19937_64 rng(4);
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 300, 2, 5, data::Distribution::kUniform, 5);
  ab::AbConfig cfg;
  cfg.alpha = 8;
  ab::AbIndex original = ab::AbIndex::Build(d, cfg);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    util::StatusOr<ab::AbIndex> back = ab::AbIndex::Deserialize(&r);
    if (back.ok()) {
      // An accepted index must at least answer probes without crashing.
      (void)back.value().TestCell(0, 0, 0);
    }
  }
}

TEST(FuzzRobustnessTest, EnvelopeCatchesMostMutations) {
  // The CRC-protected envelope should reject nearly all payload bit flips.
  std::mt19937_64 rng(5);
  std::vector<uint8_t> payload(256);
  for (uint8_t& b : payload) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> wrapped =
      util::WrapEnvelope(util::PayloadType::kAbIndex, payload);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = wrapped;
    mutated[rng() % mutated.size()] ^= uint8_t{1} << (rng() % 8);
    std::vector<uint8_t> out;
    if (util::UnwrapEnvelope(mutated, util::PayloadType::kAbIndex, &out)
            .ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0);
}

}  // namespace
}  // namespace abitmap
