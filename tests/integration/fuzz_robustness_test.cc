// Randomized robustness tests, two families:
//  * deserializers must reject or tolerate — but never crash on —
//    arbitrarily corrupted input. Each trial serializes a valid
//    structure, applies random byte mutations/truncations, and feeds the
//    result back. A mutation may survive validation (it can hit padding
//    or produce a different-but-valid structure); the contract under
//    test is memory safety plus structural invariants of whatever is
//    accepted.
//  * randomized insert/probe sweeps across the three encoding levels,
//    the blocked filter, and every SIMD dispatch level the CPU supports:
//    the AB's no-false-negative guarantee and the kernels' bit-identity
//    contract must hold for arbitrary seeded inputs, not just the
//    hand-picked cases of the unit tests.

#include <memory>
#include <random>

#include "gtest/gtest.h"

#include "bbc/bbc_vector.h"
#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "core/blocked_bitmap.h"
#include "core/mutable_index.h"
#include "data/generators.h"
#include "util/byte_io.h"
#include "util/file_io.h"
#include "util/simd.h"
#include "wah/wah_vector.h"

namespace abitmap {
namespace {

std::vector<uint8_t> Mutate(const std::vector<uint8_t>& bytes,
                            std::mt19937_64& rng) {
  std::vector<uint8_t> out = bytes;
  switch (rng() % 3) {
    case 0: {  // flip 1-4 random bits
      int flips = 1 + rng() % 4;
      for (int i = 0; i < flips && !out.empty(); ++i) {
        out[rng() % out.size()] ^= uint8_t{1} << (rng() % 8);
      }
      break;
    }
    case 1: {  // truncate
      if (!out.empty()) out.resize(rng() % out.size());
      break;
    }
    default: {  // splice random garbage into the middle
      size_t pos = out.empty() ? 0 : rng() % out.size();
      int count = 1 + rng() % 16;
      for (int i = 0; i < count; ++i) {
        out.insert(out.begin() + pos, static_cast<uint8_t>(rng()));
      }
      break;
    }
  }
  return out;
}

TEST(FuzzRobustnessTest, WahDeserializeNeverCrashes) {
  std::mt19937_64 rng(1);
  util::BitVector bits(5000);
  for (int i = 0; i < 700; ++i) bits.Set(rng() % 5000);
  wah::WahVector original = wah::WahVector::Compress(bits);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    wah::WahVector back;
    if (wah::WahVector::Deserialize(&r, &back).ok()) {
      // Whatever was accepted must be internally consistent.
      EXPECT_EQ(back.Decompress().size(), back.size());
      EXPECT_LE(back.CountOnes(), back.size());
    }
  }
}

TEST(FuzzRobustnessTest, BbcDeserializeNeverCrashes) {
  std::mt19937_64 rng(2);
  util::BitVector bits(4000);
  for (int i = 0; i < 900; ++i) bits.Set(rng() % 4000);
  bbc::BbcVector original = bbc::BbcVector::Compress(bits);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    bbc::BbcVector back;
    if (bbc::BbcVector::Deserialize(&r, &back).ok()) {
      EXPECT_EQ(back.Decompress().size(), back.size());
    }
  }
}

TEST(FuzzRobustnessTest, BitVectorDeserializeNeverCrashes) {
  std::mt19937_64 rng(3);
  util::BitVector original(777);
  for (int i = 0; i < 100; ++i) original.Set(rng() % 777);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    util::BitVector back;
    if (util::BitVector::Deserialize(&r, &back).ok()) {
      EXPECT_LE(back.Count(), back.size());
    }
  }
}

TEST(FuzzRobustnessTest, AbIndexDeserializeNeverCrashes) {
  std::mt19937_64 rng(4);
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 300, 2, 5, data::Distribution::kUniform, 5);
  ab::AbConfig cfg;
  cfg.alpha = 8;
  ab::AbIndex original = ab::AbIndex::Build(d, cfg);
  util::ByteWriter w;
  original.Serialize(&w);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
    util::ByteReader r(mutated);
    util::StatusOr<ab::AbIndex> back = ab::AbIndex::Deserialize(&r);
    if (back.ok()) {
      // An accepted index must at least answer probes without crashing.
      (void)back.value().TestCell(0, 0, 0);
    }
  }
}

TEST(FuzzRobustnessTest, EnvelopeCatchesMostMutations) {
  // The CRC-protected envelope should reject nearly all payload bit flips.
  std::mt19937_64 rng(5);
  std::vector<uint8_t> payload(256);
  for (uint8_t& b : payload) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> wrapped =
      util::WrapEnvelope(util::PayloadType::kAbIndex, payload);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = wrapped;
    mutated[rng() % mutated.size()] ^= uint8_t{1} << (rng() % 8);
    std::vector<uint8_t> out;
    if (util::UnwrapEnvelope(mutated, util::PayloadType::kAbIndex, &out)
            .ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0);
}

// Forces each dispatch level the binary/CPU supports in turn and runs
// `body(level)` under it; always restores the entry level. Levels the
// clamp rejects (e.g. kAvx2 on a NEON machine) are skipped.
template <typename Body>
void ForEachSupportedSimdLevel(const Body& body) {
  namespace simd = util::simd;
  simd::SimdLevel entry = simd::ActiveSimdLevel();
  for (simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kSse2,
        simd::SimdLevel::kAvx2, simd::SimdLevel::kNeon}) {
    simd::SetSimdLevelForTesting(level);
    if (simd::ActiveSimdLevel() != level) continue;
    SCOPED_TRACE(std::string("simd=") + simd::SimdLevelName(level));
    body(level);
  }
  simd::SetSimdLevelForTesting(entry);
}

TEST(FuzzRobustnessTest, RandomProbesNeverFalseNegativeAtAnyLevel) {
  // Seeded random relations, all three encoding levels, every supported
  // dispatch level: every truly-set cell must be reported set, and the
  // scalar/batched evaluation paths must agree bit for bit.
  std::mt19937_64 rng(6);
  bitmap::BinnedDataset d = data::MakeSynthetic(
      "fz", /*rows=*/4000, /*attrs=*/3, /*cardinality=*/6,
      data::Distribution::kUniform, /*seed=*/9);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);

  for (ab::Level level : {ab::Level::kPerDataset, ab::Level::kPerAttribute,
                          ab::Level::kPerColumn}) {
    SCOPED_TRACE(ab::LevelName(level));
    ab::AbConfig cfg;
    cfg.level = level;
    cfg.alpha = 4;  // deliberately small: plenty of false positives
    ab::AbIndex index = ab::AbIndex::Build(d, cfg);

    ForEachSupportedSimdLevel([&](util::simd::SimdLevel) {
      // Randomized cell probes against ground truth.
      for (int trial = 0; trial < 2000; ++trial) {
        uint64_t row = rng() % d.num_rows();
        uint32_t attr = rng() % d.values.size();
        uint32_t bin = rng() % 6;
        bool truth = d.values[attr][row] == bin;
        bool reported = index.TestCell(row, attr, bin);
        if (truth) EXPECT_TRUE(reported) << "false negative";
      }
      // Randomized range queries over random row subsets.
      for (int trial = 0; trial < 10; ++trial) {
        bitmap::BitmapQuery q;
        uint32_t a0 = rng() % 3, a1 = (a0 + 1 + rng() % 2) % 3;
        uint32_t lo0 = rng() % 5, lo1 = rng() % 5;
        q.ranges = {{a0, lo0, lo0 + 1}, {a1, lo1, lo1 + 1}};
        uint64_t start = rng() % (d.num_rows() - 500);
        q.rows = bitmap::RowRange(start, start + 499);
        std::vector<bool> exact = table.Evaluate(q);
        std::vector<bool> scalar = index.Evaluate(q);
        std::vector<bool> batched = index.EvaluateBatched(q);
        ASSERT_EQ(scalar.size(), exact.size());
        ASSERT_EQ(batched, scalar);  // kernel bit-identity
        for (size_t i = 0; i < exact.size(); ++i) {
          if (exact[i]) EXPECT_TRUE(scalar[i]) << "false negative at " << i;
        }
      }
    });
  }
}

TEST(FuzzRobustnessTest, RandomMutationOpsNeverFalseNegativeAtAnyLevel) {
  // The mutable index under a seeded op fuzz: inserts, deletes, and
  // generation rebuilds fired at random points, across all three encoding
  // levels and every supported SIMD dispatch level. After every burst the
  // live ground truth must probe positive cell-by-cell, Evaluate() must
  // agree bit-for-bit with a query composed from single-cell probes (the
  // read-path parity contract), and dead rows must never match.
  std::mt19937_64 rng(8);
  const uint32_t kAttrs = 3;
  const uint32_t kBins = 6;

  for (ab::Level level : {ab::Level::kPerDataset, ab::Level::kPerAttribute,
                          ab::Level::kPerColumn}) {
    SCOPED_TRACE(ab::LevelName(level));
    bitmap::BinnedDataset d = data::MakeSynthetic(
        "mz", /*rows=*/600, kAttrs, kBins, data::Distribution::kUniform, 13);
    ab::MutableAbIndex::Options options;
    options.config.level = level;
    options.config.alpha = 4;  // deliberately small: drift happens fast
    options.auto_rebuild = false;
    auto index = ab::MutableAbIndex::Build(d, options);
    std::vector<bool> alive(d.num_rows(), true);

    ForEachSupportedSimdLevel([&](util::simd::SimdLevel) {
      // A burst of random mutations...
      for (int op = 0; op < 300; ++op) {
        uint64_t dice = rng() % 100;
        if (dice < 45) {
          std::vector<uint32_t> bins(kAttrs);
          for (uint32_t a = 0; a < kAttrs; ++a) {
            bins[a] = static_cast<uint32_t>(rng() % kBins);
            d.values[a].push_back(bins[a]);
          }
          uint64_t row = index->InsertRow(bins);
          ASSERT_EQ(row, alive.size());
          alive.push_back(true);
        } else if (dice < 90) {
          uint64_t row = rng() % alive.size();
          EXPECT_EQ(index->DeleteRow(row), static_cast<bool>(alive[row]));
          alive[row] = false;
        } else {
          index->Rebuild();
        }
      }
      // ...then the full contract sweep.
      for (uint64_t row = 0; row < alive.size(); ++row) {
        if (!alive[row]) continue;
        for (uint32_t a = 0; a < kAttrs; ++a) {
          ASSERT_TRUE(index->TestCell(row, a, d.values[a][row]))
              << "false negative row " << row << " attr " << a;
        }
      }
      for (int trial = 0; trial < 8; ++trial) {
        bitmap::BitmapQuery q;
        uint32_t a0 = rng() % kAttrs, a1 = (a0 + 1) % kAttrs;
        uint32_t lo0 = rng() % (kBins - 1), lo1 = rng() % (kBins - 1);
        q.ranges = {{a0, lo0, lo0 + 1}, {a1, lo1, lo1 + 1}};
        std::vector<bool> got = index->Evaluate(q);
        ASSERT_EQ(got.size(), alive.size());
        for (uint64_t row = 0; row < alive.size(); ++row) {
          if (!alive[row]) {
            EXPECT_FALSE(got[row]) << "dead row " << row << " matched";
            continue;
          }
          // Read-path parity: Evaluate == AND-of-OR over TestCell.
          bool composed = true;
          for (const bitmap::AttributeRange& range : q.ranges) {
            bool any = false;
            for (uint32_t b = range.lo_bin; b <= range.hi_bin; ++b) {
              any = any || index->TestCell(row, range.attr, b);
            }
            composed = composed && any;
          }
          EXPECT_EQ(got[row], composed) << "parity break at row " << row;
          bool truth = d.values[a0][row] >= lo0 && d.values[a0][row] <= lo0 + 1 &&
                       d.values[a1][row] >= lo1 && d.values[a1][row] <= lo1 + 1;
          if (truth) EXPECT_TRUE(got[row]) << "false negative at " << row;
        }
      }
    });
  }
}

TEST(FuzzRobustnessTest, BlockedFilterRandomInsertProbeAtEverySimdLevel) {
  // The blocked AB has its own probe kernel (Block512Covers) with SIMD
  // variants: random keys inserted through the scalar and batched paths
  // must all test positive at every dispatch level, and TestBatchMask
  // must agree with scalar Test on arbitrary probe mixes.
  std::mt19937_64 rng(7);
  std::vector<uint64_t> keys(3000);
  for (uint64_t& k : keys) k = rng();

  ab::BlockedApproximateBitmap filter(
      ab::AbParams::ForAlpha(/*alpha=*/8, /*k=*/4, keys.size()));
  // Half scalar inserts, half batched — both commit identically.
  size_t half = keys.size() / 2;
  for (size_t i = 0; i < half; ++i) filter.Insert(keys[i]);
  filter.InsertBatch(keys.data() + half, keys.size() - half);
  EXPECT_EQ(filter.insertions(), keys.size());

  ForEachSupportedSimdLevel([&](util::simd::SimdLevel) {
    for (uint64_t k : keys) {
      ASSERT_TRUE(filter.Test(k)) << "false negative for inserted key";
    }
    // Random probe windows mixing present and absent keys.
    for (int trial = 0; trial < 50; ++trial) {
      uint64_t window[ab::BlockedApproximateBitmap::kBatchWindow];
      size_t count = 1 + rng() % ab::BlockedApproximateBitmap::kBatchWindow;
      for (size_t i = 0; i < count; ++i) {
        window[i] = (rng() % 2 == 0) ? keys[rng() % keys.size()] : rng();
      }
      uint64_t mask = filter.TestBatchMask(window, count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ((mask >> i) & 1, filter.Test(window[i]) ? 1u : 0u);
      }
    }
  });
}

}  // namespace
}  // namespace abitmap
