#include <random>

#include "gtest/gtest.h"

#include "bbc/bbc_vector.h"
#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "data/query_gen.h"
#include "wah/wah_query.h"

namespace abitmap {
namespace {

/// End-to-end pipeline over a scaled-down evaluation dataset: generate data,
/// build uncompressed / WAH / AB indexes, run the paper's query workload,
/// and check that every representation agrees (exactly for WAH, up to false
/// positives for AB).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new bitmap::BinnedDataset(
        data::MakeUniformDataset(123, /*scale=*/10));  // 10,000 rows
    table_ = new bitmap::BitmapTable(bitmap::BitmapTable::Build(*dataset_));
    wah_ = new wah::WahIndex(wah::WahIndex::Build(*table_));
  }
  static void TearDownTestSuite() {
    delete wah_;
    delete table_;
    delete dataset_;
    wah_ = nullptr;
    table_ = nullptr;
    dataset_ = nullptr;
  }

  static bitmap::BinnedDataset* dataset_;
  static bitmap::BitmapTable* table_;
  static wah::WahIndex* wah_;
};

bitmap::BinnedDataset* EndToEndTest::dataset_ = nullptr;
bitmap::BitmapTable* EndToEndTest::table_ = nullptr;
wah::WahIndex* EndToEndTest::wah_ = nullptr;

TEST_F(EndToEndTest, WahAgreesWithUncompressedOnWorkload) {
  data::QueryGenParams qp;
  qp.num_queries = 50;
  qp.rows_queried = 1000;
  qp.seed = 1;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(*dataset_, qp)) {
    EXPECT_EQ(wah_->Evaluate(q), table_->Evaluate(q));
  }
}

TEST_F(EndToEndTest, AbIsLosslessSupersetAcrossLevelsAndSchemes) {
  data::QueryGenParams qp;
  qp.num_queries = 20;
  qp.rows_queried = 500;
  qp.seed = 2;
  std::vector<bitmap::BitmapQuery> queries =
      data::GenerateQueries(*dataset_, qp);

  for (ab::Level level : {ab::Level::kPerDataset, ab::Level::kPerAttribute,
                          ab::Level::kPerColumn}) {
    for (ab::HashScheme scheme :
         {ab::HashScheme::kIndependent, ab::HashScheme::kSha1,
          ab::HashScheme::kDoubleHash}) {
      ab::AbConfig cfg;
      cfg.level = level;
      cfg.scheme = scheme;
      // The paper's chosen alpha for the uniform dataset (Section 6.1).
      cfg.alpha = 16;
      ab::AbIndex index = ab::AbIndex::Build(*dataset_, cfg);
      data::BatchAccuracy batch;
      for (const bitmap::BitmapQuery& q : queries) {
        batch.Add(data::CompareResults(table_->Evaluate(q), index.Evaluate(q)));
      }
      EXPECT_EQ(batch.false_negatives, 0u)
          << ab::LevelName(level) << " " << ab::HashSchemeName(scheme);
      EXPECT_GT(batch.precision(), 0.85)
          << ab::LevelName(level) << " " << ab::HashSchemeName(scheme);
    }
  }
}

TEST_F(EndToEndTest, AbSmallerThanWahAtPaperSettings) {
  // Section 6.1: for uniform data at alpha=16, per-column AB total is less
  // than half the WAH size. At the 1/10 scale the proportions persist.
  ab::AbConfig cfg;
  cfg.level = ab::Level::kPerColumn;
  cfg.alpha = 16;
  ab::AbIndex index = ab::AbIndex::Build(*dataset_, cfg);
  EXPECT_LT(index.SizeInBytes(), wah_->SizeInBytes());
}

TEST_F(EndToEndTest, CompressionSanityAcrossRepresentations) {
  // WAH and BBC must both decompress every column back to the table.
  for (uint32_t j = 0; j < table_->num_columns(); j += 17) {
    bbc::BbcVector b = bbc::BbcVector::Compress(table_->column(j));
    EXPECT_EQ(b.Decompress(), table_->column(j)) << j;
    EXPECT_EQ(wah_->column(j).Decompress(), table_->column(j)) << j;
  }
}

TEST_F(EndToEndTest, PrecisionScalesWithAlphaOnRealWorkload) {
  data::QueryGenParams qp;
  qp.num_queries = 30;
  qp.rows_queried = 1000;
  qp.seed = 3;
  std::vector<bitmap::BitmapQuery> queries =
      data::GenerateQueries(*dataset_, qp);
  double prev = 0;
  for (double alpha : {2.0, 8.0, 16.0}) {
    ab::AbConfig cfg;
    cfg.level = ab::Level::kPerAttribute;
    cfg.alpha = alpha;
    ab::AbIndex index = ab::AbIndex::Build(*dataset_, cfg);
    data::BatchAccuracy batch;
    for (const bitmap::BitmapQuery& q : queries) {
      batch.Add(data::CompareResults(table_->Evaluate(q), index.Evaluate(q)));
    }
    EXPECT_GE(batch.precision(), prev - 0.03) << alpha;
    prev = batch.precision();
  }
  EXPECT_GT(prev, 0.97);
}

TEST_F(EndToEndTest, SecondStepPruningYieldsExactAnswers) {
  // The paper's exact-answer recipe: evaluate with the AB, then prune false
  // positives against the base data — result must equal the exact answer.
  ab::AbConfig cfg;
  cfg.alpha = 4;  // deliberately noisy
  ab::AbIndex index = ab::AbIndex::Build(*dataset_, cfg);

  data::QueryGenParams qp;
  qp.num_queries = 10;
  qp.rows_queried = 800;
  qp.seed = 4;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(*dataset_, qp)) {
    std::vector<bool> approx = index.Evaluate(q);
    // Prune: re-check candidate rows against the raw values.
    std::vector<bool> pruned(approx.size(), false);
    for (size_t idx = 0; idx < approx.size(); ++idx) {
      if (!approx[idx]) continue;  // AB guarantees these are true 0s
      uint64_t row = q.rows[idx];
      bool keep = true;
      for (const bitmap::AttributeRange& r : q.ranges) {
        uint32_t v = dataset_->values[r.attr][row];
        if (v < r.lo_bin || v > r.hi_bin) {
          keep = false;
          break;
        }
      }
      pruned[idx] = keep;
    }
    EXPECT_EQ(pruned, table_->Evaluate(q));
  }
}

}  // namespace
}  // namespace abitmap
