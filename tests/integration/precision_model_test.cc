// Statistical self-verification of the paper's precision model (Section
// 4): over a seeded (alpha, k, encoding level) grid, the observed false
// positive rate of cell probes must sit inside a binomial confidence band
// around the analytic rate FP = (1 - e^{-k/alpha})^k — evaluated with the
// *realized* parameters, since AbSizeBits rounds filter sizes up to
// powers of two (realized alpha = n/s >= requested alpha). The exact
// finite-n formula FalsePositiveRateExact(n, s, k) is the per-filter
// expectation; a companion test bounds its distance to the asymptotic
// closed form.
//
// Every trial probes cells whose ground-truth value is 0 (bin != the
// row's actual value), so any 1 answered is a false positive and any
// false negative would be a hard contract violation.

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "core/ab_theory.h"
#include "core/mutable_index.h"
#include "data/generators.h"
#include "data/query_gen.h"
#include "obs/trace.h"

namespace abitmap {
namespace {

struct GridPoint {
  ab::Level level;
  double alpha;
  int k;  // 0 = optimal for alpha
};

// The filter AbIndex routes cell (attr, global_col) to — mirrors the
// index's level-based routing, which the public filter() accessor exposes
// by construction order (dataset: one filter; attribute: one per attr;
// column: one per global column).
size_t RouteFilter(const ab::AbIndex& index, uint32_t attr,
                   uint32_t global_col) {
  switch (index.level()) {
    case ab::Level::kPerDataset:
      return 0;
    case ab::Level::kPerAttribute:
      return attr;
    case ab::Level::kPerColumn:
      return global_col;
  }
  return 0;
}

TEST(PrecisionModelTest, ObservedFpWithinBinomialBandAcrossGrid) {
  const std::vector<GridPoint> grid = {
      {ab::Level::kPerDataset, 4.0, 0},  {ab::Level::kPerDataset, 8.0, 0},
      {ab::Level::kPerAttribute, 4.0, 0}, {ab::Level::kPerAttribute, 8.0, 0},
      {ab::Level::kPerAttribute, 16.0, 0}, {ab::Level::kPerAttribute, 8.0, 2},
      {ab::Level::kPerColumn, 4.0, 0},   {ab::Level::kPerColumn, 8.0, 0},
  };
  const uint64_t kRows = 2000;
  const uint32_t kAttrs = 3;
  const uint32_t kBins = 8;
  bitmap::BinnedDataset dataset =
      data::MakeSynthetic("precision", kRows, kAttrs, kBins,
                          data::Distribution::kUniform, /*seed=*/11);

  for (const GridPoint& point : grid) {
    ab::AbConfig config;
    config.level = point.level;
    config.alpha = point.alpha;
    config.k = point.k;
    ab::AbIndex index = ab::AbIndex::Build(dataset, config);

    // Probe every truly-zero cell; accumulate the per-probe expectation
    // from the responsible filter's realized (n, s, k).
    double expected_fp = 0;
    double variance = 0;
    uint64_t observed_fp = 0;
    uint64_t probes = 0;
    for (uint64_t row = 0; row < kRows; ++row) {
      for (uint32_t attr = 0; attr < kAttrs; ++attr) {
        uint32_t true_bin = dataset.values[attr][row];
        for (uint32_t bin = 0; bin < kBins; ++bin) {
          if (bin == true_bin) {
            // The no-false-negative guarantee, checked while we're here.
            ASSERT_TRUE(index.TestCell(row, attr, bin));
            continue;
          }
          const ab::ApproximateBitmap& filter = index.filter(RouteFilter(
              index, attr, index.mapping().GlobalColumn(attr, bin)));
          double p = ab::FalsePositiveRateExact(
              filter.size_bits(), filter.insertions(), filter.k());
          expected_fp += p;
          variance += p * (1 - p);
          observed_fp += index.TestCell(row, attr, bin) ? 1 : 0;
          ++probes;
        }
      }
    }
    ASSERT_GT(probes, 0u);
    // Binomial band: 6 sigma plus a small model-error cushion (probes
    // into one filter are not perfectly independent; the exact formula
    // itself assumes independent bit occupancy).
    double band = 6.0 * std::sqrt(variance) + 0.02 * expected_fp + 10.0;
    EXPECT_NEAR(static_cast<double>(observed_fp), expected_fp, band)
        << "level=" << ab::LevelName(point.level)
        << " alpha=" << point.alpha << " k=" << point.k
        << " probes=" << probes;
  }
}

// Filter index a (attr, global_col) cell routes to under each level;
// matches CountingAbIndex's routing and so indexes FilterStatsSnapshot().
size_t RouteMutable(ab::Level level, uint32_t attr, uint32_t global_col) {
  switch (level) {
    case ab::Level::kPerDataset: return 0;
    case ab::Level::kPerAttribute: return attr;
    case ab::Level::kPerColumn: return global_col;
  }
  return 0;
}

TEST(PrecisionModelTest, PostChurnFpWithinBinomialBandAtEffectiveAlpha) {
  // The mutable index's precision model after streaming churn: delete a
  // big slice and insert fresh rows, then price every truly-zero probe of
  // a *live* row with FalsePositiveRateExact at the filter's *live* cell
  // count — the effective α, not the as-built one. Observed false
  // positives must sit inside the same 6σ binomial band the read-only
  // grid uses; any false negative on a live row fails hard.
  const std::vector<std::pair<ab::Level, double>> grid = {
      {ab::Level::kPerDataset, 8.0},
      {ab::Level::kPerAttribute, 8.0},
      {ab::Level::kPerColumn, 4.0},
  };
  const uint64_t kRows = 1500;
  const uint32_t kAttrs = 3;
  const uint32_t kBins = 8;

  for (const auto& [level, alpha] : grid) {
    bitmap::BinnedDataset dataset =
        data::MakeSynthetic("churn", kRows, kAttrs, kBins,
                            data::Distribution::kUniform, /*seed=*/29);
    ab::MutableAbIndex::Options options;
    options.config.level = level;
    options.config.alpha = alpha;
    options.auto_rebuild = false;  // keep generation 0: drift, don't regrow
    auto index = ab::MutableAbIndex::Build(dataset, options);

    std::mt19937_64 rng(31);
    std::vector<bool> alive(kRows, true);
    for (uint64_t row = 0; row < kRows; ++row) {
      if (rng() % 5 < 2) {  // ~40% deleted
        index->DeleteRow(row);
        alive[row] = false;
      }
    }
    for (int i = 0; i < 300; ++i) {
      std::vector<uint32_t> bins(kAttrs);
      for (uint32_t a = 0; a < kAttrs; ++a) {
        bins[a] = static_cast<uint32_t>(rng() % kBins);
        dataset.values[a].push_back(bins[a]);
      }
      index->InsertRow(bins);
      alive.push_back(true);
    }

    std::vector<ab::MutableAbIndex::FilterStats> stats =
        index->FilterStatsSnapshot();
    double expected_fp = 0;
    double variance = 0;
    uint64_t observed_fp = 0;
    uint64_t probes = 0;
    for (uint64_t row = 0; row < alive.size(); ++row) {
      if (!alive[row]) continue;
      for (uint32_t attr = 0; attr < kAttrs; ++attr) {
        uint32_t true_bin = dataset.values[attr][row];
        for (uint32_t bin = 0; bin < kBins; ++bin) {
          if (bin == true_bin) {
            ASSERT_TRUE(index->TestCell(row, attr, bin))
                << "post-churn false negative: row " << row;
            continue;
          }
          const ab::MutableAbIndex::FilterStats& f = stats[RouteMutable(
              level, attr, index->mapping().GlobalColumn(attr, bin))];
          double p =
              ab::FalsePositiveRateExact(f.num_counters, f.live, f.k);
          expected_fp += p;
          variance += p * (1 - p);
          observed_fp += index->TestCell(row, attr, bin) ? 1 : 0;
          ++probes;
        }
      }
    }
    ASSERT_GT(probes, 0u);
    double band = 6.0 * std::sqrt(variance) + 0.02 * expected_fp + 10.0;
    EXPECT_NEAR(static_cast<double>(observed_fp), expected_fp, band)
        << "level=" << ab::LevelName(level) << " alpha=" << alpha
        << " probes=" << probes
        << " worst_fp=" << index->WorstExpectedFp();
  }
}

TEST(PrecisionModelTest, AsymptoticFormulaTracksExactAtRealizedAlpha) {
  // FP = (1 - e^{-k/alpha})^k with alpha = n/s must agree with the exact
  // finite-n rate to well under the confidence bands used above.
  for (double alpha : {2.0, 4.0, 8.0, 16.0}) {
    for (uint64_t s : {500ull, 5000ull, 50000ull}) {
      int k = ab::OptimalK(alpha);
      uint64_t n = ab::AbSizeBits(s, alpha);
      double realized_alpha =
          static_cast<double>(n) / static_cast<double>(s);
      double asymptotic = ab::FalsePositiveRate(realized_alpha, k);
      double exact = ab::FalsePositiveRateExact(n, s, k);
      EXPECT_NEAR(asymptotic, exact, 0.01 * exact + 1e-9)
          << "alpha=" << alpha << " s=" << s << " k=" << k;
    }
  }
}

TEST(PrecisionModelTest, TracePredictionMatchesObservedQueryPrecision) {
  // Query-level check of the estimator surfaced in QueryTrace: over a
  // seeded workload on uniform data (where the estimator's independence
  // assumption holds), the AB's total reported rows must track the
  // prediction total_true / predicted_precision.
  bitmap::BinnedDataset dataset =
      data::MakeSynthetic("trace", /*rows=*/20000, /*attrs=*/4,
                          /*cardinality=*/10, data::Distribution::kUniform,
                          /*seed=*/17);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);
  ab::AbConfig config;
  config.level = ab::Level::kPerAttribute;
  config.alpha = 8;
  ab::AbIndex index = ab::AbIndex::Build(dataset, config);

  data::QueryGenParams params;
  params.num_queries = 40;
  params.qdim = 2;
  params.bins_per_attr = 3;
  params.rows_queried = 2000;
  params.seed = 23;
  std::vector<bitmap::BitmapQuery> queries =
      data::GenerateQueries(dataset, params);
  ASSERT_FALSE(queries.empty());

  double expected_reported = 0;
  uint64_t total_reported = 0;
  for (const bitmap::BitmapQuery& q : queries) {
    obs::QueryTrace trace;
    std::vector<bool> approx = index.EvaluateBatched(q, &trace);
    std::vector<bool> exact = table.Evaluate(q);
    ASSERT_EQ(approx.size(), exact.size());
    uint64_t true_matches = 0;
    for (size_t i = 0; i < exact.size(); ++i) {
      if (exact[i]) {
        ++true_matches;
        ASSERT_TRUE(approx[i]);  // no false negatives, ever
      }
      total_reported += approx[i] ? 1 : 0;
    }
    ASSERT_GT(trace.predicted_precision, 0.0);
    ASSERT_LE(trace.predicted_precision, 1.0);
    expected_reported +=
        static_cast<double>(true_matches) / trace.predicted_precision;
  }
  // Generous aggregate band: the estimator is analytic, the observation
  // binomial; 15% relative plus an absolute floor keeps the test stable
  // across hash families while still catching a broken model (which is
  // off by integer factors, not percent).
  EXPECT_NEAR(static_cast<double>(total_reported), expected_reported,
              0.15 * expected_reported + 100.0);
}

}  // namespace
}  // namespace abitmap
