// Serialization round-trips and corruption injection across every
// persistable structure.

#include <cstdio>
#include <random>

#include "gtest/gtest.h"

#include "bbc/bbc_vector.h"
#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "data/generators.h"
#include "data/query_gen.h"
#include "util/byte_io.h"
#include "util/file_io.h"
#include "wah/wah_query.h"
#include "wah/wah_vector.h"

namespace abitmap {
namespace {

util::BitVector RandomBits(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  util::BitVector out(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng() % 3 == 0) out.Set(i);
  }
  return out;
}

TEST(BitVectorSerializationTest, RoundTrip) {
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    util::BitVector original = RandomBits(n, n + 1);
    util::ByteWriter w;
    original.Serialize(&w);
    util::ByteReader r(w.bytes());
    util::BitVector back;
    ASSERT_TRUE(util::BitVector::Deserialize(&r, &back).ok()) << n;
    EXPECT_EQ(back, original) << n;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BitVectorSerializationTest, RejectsNonzeroPadding) {
  util::BitVector v = RandomBits(70, 1);
  util::ByteWriter w;
  v.Serialize(&w);
  // The final word's padding bits live at the end of the buffer; set one.
  std::vector<uint8_t> bytes = w.bytes();
  bytes.back() |= 0x80;  // bit 71 of the second word
  util::ByteReader r(bytes);
  util::BitVector back;
  EXPECT_EQ(util::BitVector::Deserialize(&r, &back).code(),
            util::StatusCode::kCorruption);
}

template <typename T>
class WahSerializationTypedTest : public ::testing::Test {};
using WahWordTypes = ::testing::Types<uint32_t, uint64_t>;
TYPED_TEST_SUITE(WahSerializationTypedTest, WahWordTypes);

TYPED_TEST(WahSerializationTypedTest, RoundTrip) {
  for (size_t n : {0u, 1u, 31u, 62u, 1000u, 50000u}) {
    auto original = wah::WahVectorT<TypeParam>::Compress(RandomBits(n, n));
    util::ByteWriter w;
    original.Serialize(&w);
    util::ByteReader r(w.bytes());
    wah::WahVectorT<TypeParam> back;
    ASSERT_TRUE(wah::WahVectorT<TypeParam>::Deserialize(&r, &back).ok()) << n;
    EXPECT_EQ(back, original) << n;
    EXPECT_EQ(back.Decompress(), original.Decompress()) << n;
  }
}

TYPED_TEST(WahSerializationTypedTest, RejectsGroupAccountingMismatch) {
  auto v = wah::WahVectorT<TypeParam>::Compress(RandomBits(1000, 3));
  util::ByteWriter w;
  v.Serialize(&w);
  std::vector<uint8_t> bytes = w.bytes();
  // Corrupt the bit count in the header (first varint byte).
  bytes[0] ^= 0x01;
  util::ByteReader r(bytes);
  wah::WahVectorT<TypeParam> back;
  EXPECT_FALSE(wah::WahVectorT<TypeParam>::Deserialize(&r, &back).ok());
}

TEST(BbcSerializationTest, RoundTrip) {
  for (size_t n : {0u, 1u, 8u, 9u, 5000u}) {
    bbc::BbcVector original = bbc::BbcVector::Compress(RandomBits(n, n + 7));
    util::ByteWriter w;
    original.Serialize(&w);
    util::ByteReader r(w.bytes());
    bbc::BbcVector back;
    ASSERT_TRUE(bbc::BbcVector::Deserialize(&r, &back).ok()) << n;
    EXPECT_EQ(back, original) << n;
  }
}

TEST(BbcSerializationTest, RejectsTruncatedLiteralRun) {
  bbc::BbcVector v = bbc::BbcVector::Compress(RandomBits(500, 9));
  util::ByteWriter w;
  v.Serialize(&w);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 3);  // chop the stream, keep the header intact
  util::ByteReader r(bytes);
  bbc::BbcVector back;
  EXPECT_FALSE(bbc::BbcVector::Deserialize(&r, &back).ok());
}

TEST(WahIndexSerializationTest, RoundTripPreservesAnswers) {
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 1500, 3, 9, data::Distribution::kUniform, 12);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  wah::WahIndex original = wah::WahIndex::Build(table);

  util::ByteWriter w;
  original.Serialize(&w);
  util::ByteReader r(w.bytes());
  util::StatusOr<wah::WahIndex> back = wah::WahIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().SizeInBytes(), original.SizeInBytes());

  data::QueryGenParams qp;
  qp.num_queries = 10;
  qp.rows_queried = 300;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(d, qp)) {
    EXPECT_EQ(back.value().Evaluate(q), original.Evaluate(q));
  }
}

TEST(WahIndexSerializationTest, TruncationRejected) {
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 500, 2, 5, data::Distribution::kUniform, 13);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  wah::WahIndex original = wah::WahIndex::Build(table);
  util::ByteWriter w;
  original.Serialize(&w);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  util::ByteReader r(bytes);
  EXPECT_FALSE(wah::WahIndex::Deserialize(&r).ok());
}

class AbIndexSerializationTest : public ::testing::TestWithParam<ab::Level> {
 protected:
  bitmap::BinnedDataset dataset_ =
      data::MakeSynthetic("t", 2000, 3, 12, data::Distribution::kUniform, 5);
};

TEST_P(AbIndexSerializationTest, RoundTripPreservesAnswers) {
  ab::AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 8;
  ab::AbIndex original = ab::AbIndex::Build(dataset_, cfg);

  util::ByteWriter w;
  original.Serialize(&w);
  util::ByteReader r(w.bytes());
  util::StatusOr<ab::AbIndex> back = ab::AbIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back.value().SizeInBytes(), original.SizeInBytes());
  EXPECT_EQ(back.value().num_filters(), original.num_filters());

  data::QueryGenParams qp;
  qp.num_queries = 15;
  qp.rows_queried = 400;
  for (const bitmap::BitmapQuery& q : data::GenerateQueries(dataset_, qp)) {
    EXPECT_EQ(back.value().Evaluate(q), original.Evaluate(q));
  }
}

TEST_P(AbIndexSerializationTest, FileRoundTrip) {
  ab::AbConfig cfg;
  cfg.level = GetParam();
  cfg.alpha = 4;
  ab::AbIndex original = ab::AbIndex::Build(dataset_, cfg);
  std::string path = ::testing::TempDir() + "/abitmap_index_test.abit";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  util::StatusOr<ab::AbIndex> back = ab::AbIndex::LoadFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (uint64_t row : {uint64_t{0}, uint64_t{999}, uint64_t{1999}}) {
    for (uint32_t attr = 0; attr < 3; ++attr) {
      for (uint32_t bin = 0; bin < 12; ++bin) {
        EXPECT_EQ(back.value().TestCell(row, attr, bin),
                  original.TestCell(row, attr, bin));
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Levels, AbIndexSerializationTest,
                         ::testing::Values(ab::Level::kPerDataset,
                                           ab::Level::kPerAttribute,
                                           ab::Level::kPerColumn),
                         [](const ::testing::TestParamInfo<ab::Level>& info) {
                           switch (info.param) {
                             case ab::Level::kPerDataset:
                               return "PerDataset";
                             case ab::Level::kPerAttribute:
                               return "PerAttribute";
                             default:
                               return "PerColumn";
                           }
                         });

TEST(AbIndexSerializationTest2, SchemesRoundTrip) {
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 500, 2, 8, data::Distribution::kUniform, 6);
  for (ab::HashScheme scheme :
       {ab::HashScheme::kIndependent, ab::HashScheme::kSha1,
        ab::HashScheme::kDoubleHash, ab::HashScheme::kColumnGroup}) {
    ab::AbConfig cfg;
    cfg.level = ab::Level::kPerAttribute;
    cfg.alpha = 8;
    cfg.scheme = scheme;
    ab::AbIndex original = ab::AbIndex::Build(d, cfg);
    util::ByteWriter w;
    original.Serialize(&w);
    util::ByteReader r(w.bytes());
    util::StatusOr<ab::AbIndex> back = ab::AbIndex::Deserialize(&r);
    ASSERT_TRUE(back.ok())
        << ab::HashSchemeName(scheme) << ": " << back.status().ToString();
    // No false negatives through the round trip.
    for (uint64_t i = 0; i < 500; ++i) {
      for (uint32_t a = 0; a < 2; ++a) {
        ASSERT_TRUE(back.value().TestCell(i, a, d.values[a][i]));
      }
    }
  }
}

TEST(AbIndexSerializationTest2, WrongFamilyRejected) {
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 300, 2, 6, data::Distribution::kUniform, 7);
  ab::AbConfig cfg;
  cfg.alpha = 8;
  cfg.scheme = ab::HashScheme::kIndependent;
  ab::AbIndex original = ab::AbIndex::Build(d, cfg);
  util::ByteWriter w;
  original.Serialize(&w);
  util::ByteReader r(w.bytes());
  // Force a mismatched family via the factory overload.
  util::StatusOr<ab::AbIndex> back = ab::AbIndex::Deserialize(
      &r, [](uint32_t) { return hash::MakeDoubleHashFamily(); });
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(AbIndexSerializationTest2, CorruptedPayloadRejected) {
  bitmap::BinnedDataset d =
      data::MakeSynthetic("t", 300, 2, 6, data::Distribution::kUniform, 8);
  ab::AbConfig cfg;
  cfg.alpha = 8;
  ab::AbIndex original = ab::AbIndex::Build(d, cfg);
  std::string path = ::testing::TempDir() + "/abitmap_corrupt_test.abit";
  ASSERT_TRUE(original.SaveToFile(path).ok());

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(util::ReadFile(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0xFF;  // flip a payload byte
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes).ok());

  util::StatusOr<ab::AbIndex> back = ab::AbIndex::LoadFromFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace abitmap
