#include "bitmap/binning.h"

#include <random>

#include "gtest/gtest.h"

namespace abitmap {
namespace bitmap {
namespace {

TEST(BinnerTest, EquiWidthBasics) {
  std::vector<double> values = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Binner b = Binner::EquiWidth(values, 5);
  EXPECT_EQ(b.cardinality(), 5u);
  EXPECT_EQ(b.BinOf(0.0), 0u);
  EXPECT_EQ(b.BinOf(1.9), 0u);
  EXPECT_EQ(b.BinOf(2.1), 1u);
  EXPECT_EQ(b.BinOf(9.9), 4u);
  EXPECT_EQ(b.BinOf(10.0), 4u);
}

TEST(BinnerTest, EquiWidthOutOfRangeClamped) {
  std::vector<double> values = {0, 10};
  Binner b = Binner::EquiWidth(values, 4);
  EXPECT_EQ(b.BinOf(-100.0), 0u);
  EXPECT_EQ(b.BinOf(100.0), 3u);
}

TEST(BinnerTest, EquiWidthConstantColumn) {
  std::vector<double> values(50, 3.14);
  Binner b = Binner::EquiWidth(values, 4);
  EXPECT_EQ(b.cardinality(), 4u);
  for (double v : values) EXPECT_EQ(b.BinOf(v), 0u);
}

TEST(BinnerTest, SingleBin) {
  std::vector<double> values = {1, 2, 3};
  Binner b = Binner::EquiWidth(values, 1);
  EXPECT_EQ(b.cardinality(), 1u);
  EXPECT_EQ(b.BinOf(-5), 0u);
  EXPECT_EQ(b.BinOf(5), 0u);
}

TEST(BinnerTest, EquiDepthBalancesCounts) {
  // 10,000 exponentially distributed values: equi-width would crowd the
  // low bins; equi-depth must keep them balanced.
  std::mt19937_64 rng(5);
  std::exponential_distribution<double> dist(1.0);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(dist(rng));

  Binner b = Binner::EquiDepth(values, 10);
  std::vector<int> counts(10, 0);
  for (double v : values) ++counts[b.BinOf(v)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(BinnerTest, EquiDepthHandlesHeavyDuplicates) {
  // 90% of values identical: duplicate boundaries must collapse without
  // crashing, and every value must still map to a valid bin.
  std::vector<double> values(900, 1.0);
  for (int i = 0; i < 100; ++i) values.push_back(2.0 + i);
  Binner b = Binner::EquiDepth(values, 8);
  for (double v : values) EXPECT_LT(b.BinOf(v), b.cardinality());
}

TEST(BinnerTest, ApplyMatchesBinOf) {
  std::vector<double> values = {5.5, 1.1, 9.9, 3.3};
  Binner b = Binner::EquiWidth(values, 3);
  std::vector<uint32_t> binned = b.Apply(values);
  ASSERT_EQ(binned.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(binned[i], b.BinOf(values[i]));
  }
}

TEST(BinnerTest, BoundariesAreSorted) {
  std::mt19937_64 rng(17);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(std::uniform_real_distribution<double>(-50, 50)(rng));
  }
  for (uint32_t bins : {2u, 5u, 16u, 64u}) {
    Binner w = Binner::EquiWidth(values, bins);
    Binner d = Binner::EquiDepth(values, bins);
    EXPECT_TRUE(std::is_sorted(w.boundaries().begin(), w.boundaries().end()));
    EXPECT_TRUE(std::is_sorted(d.boundaries().begin(), d.boundaries().end()));
    EXPECT_EQ(w.cardinality(), bins);
    EXPECT_EQ(d.cardinality(), bins);
  }
}

}  // namespace
}  // namespace bitmap
}  // namespace abitmap
