#include "bitmap/boolean_matrix.h"

#include "gtest/gtest.h"

namespace abitmap {
namespace bitmap {
namespace {

TEST(BooleanMatrixTest, FromStringsAndGet) {
  BooleanMatrix m = BooleanMatrix::FromStrings({"010", "001", "100"});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.Get(0, 1));
  EXPECT_TRUE(m.Get(1, 2));
  EXPECT_TRUE(m.Get(2, 0));
  EXPECT_FALSE(m.Get(0, 0));
  EXPECT_EQ(m.CountSetBits(), 3u);
}

TEST(BooleanMatrixTest, SetAndClear) {
  BooleanMatrix m(4, 4);
  m.Set(2, 3);
  EXPECT_TRUE(m.Get(2, 3));
  m.Set(2, 3, false);
  EXPECT_FALSE(m.Get(2, 3));
}

TEST(BooleanMatrixTest, SetCellsRowMajor) {
  BooleanMatrix m = BooleanMatrix::FromStrings({"01", "10"});
  std::vector<Cell> cells = m.SetCells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], (Cell{0, 1}));
  EXPECT_EQ(cells[1], (Cell{1, 0}));
}

TEST(BooleanMatrixTest, EvaluateCellQuery) {
  BooleanMatrix m = BooleanMatrix::FromStrings({"011", "100"});
  CellQuery q = {{0, 0}, {0, 2}, {1, 0}};
  std::vector<bool> expected = {false, true, true};
  EXPECT_EQ(m.Evaluate(q), expected);
}

TEST(BooleanMatrixTest, RowQueryBuilder) {
  CellQuery q = BooleanMatrix::RowQuery(2, 6);
  ASSERT_EQ(q.size(), 6u);
  for (uint32_t j = 0; j < 6; ++j) {
    EXPECT_EQ(q[j].row, 2u);
    EXPECT_EQ(q[j].col, j);
  }
}

TEST(BooleanMatrixTest, ColumnQueryBuilder) {
  CellQuery q = BooleanMatrix::ColumnQuery(5, 8);
  ASSERT_EQ(q.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(q[i].row, i);
    EXPECT_EQ(q[i].col, 5u);
  }
}

TEST(BooleanMatrixTest, DiagonalQueryBuilder) {
  CellQuery q = BooleanMatrix::DiagonalQuery(5, 3);
  ASSERT_EQ(q.size(), 3u);  // min(rows, cols)
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(q[i].row, i);
    EXPECT_EQ(q[i].col, i);
  }
}

TEST(BooleanMatrixTest, LargeSparseMatrix) {
  BooleanMatrix m(1000, 100);
  for (uint64_t i = 0; i < 1000; i += 37) m.Set(i, (i * 7) % 100);
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 1000; i += 37) ++expected;
  EXPECT_EQ(m.CountSetBits(), expected);
}

}  // namespace
}  // namespace bitmap
}  // namespace abitmap
