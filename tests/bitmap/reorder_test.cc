#include "bitmap/reorder.h"

#include <algorithm>
#include <random>

#include "gtest/gtest.h"

#include "bitmap/bitmap_table.h"
#include "util/bitvector.h"
#include "wah/wah_vector.h"

namespace abitmap {
namespace bitmap {
namespace {

BinnedDataset SmallDataset(uint64_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  BinnedDataset d;
  d.name = "reorder-test";
  d.attributes = {{"A", 4}, {"B", 6}};
  for (const AttributeInfo& a : d.attributes) {
    std::vector<uint32_t> col;
    for (uint64_t i = 0; i < rows; ++i) col.push_back(rng() % a.cardinality);
    d.values.push_back(col);
  }
  return d;
}

TEST(ReorderTest, PermutationsAreValid) {
  BinnedDataset d = SmallDataset(500, 1);
  for (auto order : {LexicographicOrder(d), GrayCodeOrder(d)}) {
    ASSERT_EQ(order.size(), 500u);
    std::vector<uint64_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (uint64_t i = 0; i < 500; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(ReorderTest, LexicographicIsSorted) {
  BinnedDataset d = SmallDataset(300, 2);
  BinnedDataset r = ReorderRows(d, LexicographicOrder(d));
  for (uint64_t i = 1; i < 300; ++i) {
    bool le = std::make_pair(r.values[0][i - 1], r.values[1][i - 1]) <=
              std::make_pair(r.values[0][i], r.values[1][i]);
    EXPECT_TRUE(le) << i;
  }
}

TEST(ReorderTest, GrayCodeMatchesBitstringGrayRank) {
  // Cross-validate the closed-form comparator against a direct Gray-rank
  // comparison of the equality-encoded bit strings.
  BinnedDataset d = SmallDataset(200, 3);
  ColumnMapping mapping(d.attributes);
  auto bits_of = [&](uint64_t row) {
    std::vector<int> bits(mapping.num_columns(), 0);
    for (uint32_t a = 0; a < d.num_attributes(); ++a) {
      bits[mapping.GlobalColumn(a, d.values[a][row])] = 1;
    }
    return bits;
  };
  auto gray_less = [&](uint64_t x, uint64_t y) {
    std::vector<int> bx = bits_of(x), by = bits_of(y);
    int ones = 0;
    for (size_t i = 0; i < bx.size(); ++i) {
      if (bx[i] != by[i]) {
        return (ones % 2 == 0) ? bx[i] == 0 : bx[i] == 1;
      }
      ones += bx[i];
    }
    return false;
  };
  std::vector<uint64_t> order = GrayCodeOrder(d);
  for (uint64_t i = 1; i < order.size(); ++i) {
    EXPECT_FALSE(gray_less(order[i], order[i - 1]))
        << "rows " << order[i - 1] << ", " << order[i];
  }
}

TEST(ReorderTest, ReorderPreservesMultiset) {
  BinnedDataset d = SmallDataset(400, 4);
  BinnedDataset r = ReorderRows(d, GrayCodeOrder(d));
  for (uint32_t a = 0; a < d.num_attributes(); ++a) {
    std::vector<uint32_t> original = d.values[a];
    std::vector<uint32_t> reordered = r.values[a];
    std::sort(original.begin(), original.end());
    std::sort(reordered.begin(), reordered.end());
    EXPECT_EQ(original, reordered);
  }
}

TEST(ReorderTest, ReorderKeepsRowsAligned) {
  // A row's tuple must move as a unit across attributes.
  BinnedDataset d = SmallDataset(100, 5);
  std::vector<uint64_t> perm = GrayCodeOrder(d);
  BinnedDataset r = ReorderRows(d, perm);
  for (uint64_t i = 0; i < 100; ++i) {
    for (uint32_t a = 0; a < d.num_attributes(); ++a) {
      EXPECT_EQ(r.values[a][i], d.values[a][perm[i]]);
    }
  }
}

TEST(ReorderTest, SortingImprovesWahCompression) {
  // The point of the preprocessing: on random data, sorted orders compress
  // materially better under WAH.
  BinnedDataset d = SmallDataset(20000, 6);
  auto wah_size = [](const BinnedDataset& dataset) {
    BitmapTable table = BitmapTable::Build(dataset);
    uint64_t total = 0;
    for (uint32_t j = 0; j < table.num_columns(); ++j) {
      total += wah::WahVector::Compress(table.column(j)).SizeInBytes();
    }
    return total;
  };
  uint64_t baseline = wah_size(d);
  uint64_t lex = wah_size(ReorderRows(d, LexicographicOrder(d)));
  uint64_t gray = wah_size(ReorderRows(d, GrayCodeOrder(d)));
  EXPECT_LT(lex, baseline / 2);
  EXPECT_LT(gray, baseline / 2);
  // Gray ordering must not lose to lexicographic by more than a whisker
  // (they coincide on the first attribute's runs; Gray improves later
  // columns' continuity).
  EXPECT_LE(gray, lex + lex / 10);
}

}  // namespace
}  // namespace bitmap
}  // namespace abitmap
