#include "bitmap/schema.h"

#include "gtest/gtest.h"

namespace abitmap {
namespace bitmap {
namespace {

std::vector<AttributeInfo> PaperFigure6Attrs() {
  // Figure 6: attributes A, B, C, three bins each, nine bitmap columns.
  return {{"A", 3}, {"B", 3}, {"C", 3}};
}

TEST(ColumnMappingTest, GlobalColumnAssignment) {
  ColumnMapping m(PaperFigure6Attrs());
  EXPECT_EQ(m.num_attributes(), 3u);
  EXPECT_EQ(m.num_columns(), 9u);
  EXPECT_EQ(m.GlobalColumn(0, 0), 0u);  // A1
  EXPECT_EQ(m.GlobalColumn(0, 2), 2u);  // A3
  EXPECT_EQ(m.GlobalColumn(1, 0), 3u);  // B1
  EXPECT_EQ(m.GlobalColumn(2, 2), 8u);  // C3
}

TEST(ColumnMappingTest, AttrBinInverse) {
  ColumnMapping m({{"X", 2}, {"Y", 5}, {"Z", 1}});
  for (uint32_t g = 0; g < m.num_columns(); ++g) {
    uint32_t attr, bin;
    m.AttrBin(g, &attr, &bin);
    EXPECT_EQ(m.GlobalColumn(attr, bin), g);
  }
}

TEST(ColumnMappingTest, MixedCardinalities) {
  ColumnMapping m({{"A", 10}, {"B", 1}, {"C", 7}});
  EXPECT_EQ(m.num_columns(), 18u);
  EXPECT_EQ(m.cardinality(0), 10u);
  EXPECT_EQ(m.cardinality(1), 1u);
  EXPECT_EQ(m.cardinality(2), 7u);
  EXPECT_EQ(m.GlobalColumn(1, 0), 10u);
  EXPECT_EQ(m.GlobalColumn(2, 0), 11u);
  EXPECT_EQ(m.GlobalColumn(2, 6), 17u);
}

TEST(BinnedDatasetTest, ValidShapePasses) {
  BinnedDataset d;
  d.name = "t";
  d.attributes = {{"A", 3}, {"B", 2}};
  d.values = {{0, 1, 2}, {1, 0, 1}};
  d.CheckValid();  // must not abort
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_attributes(), 2u);
  EXPECT_EQ(d.num_bitmap_columns(), 5u);
}

TEST(BinnedDatasetTest, EmptyDatasetCounts) {
  BinnedDataset d;
  EXPECT_EQ(d.num_rows(), 0u);
  EXPECT_EQ(d.num_attributes(), 0u);
  EXPECT_EQ(d.num_bitmap_columns(), 0u);
}

TEST(BinnedDatasetDeathTest, MismatchedColumnLengthAborts) {
  BinnedDataset d;
  d.attributes = {{"A", 3}, {"B", 2}};
  d.values = {{0, 1, 2}, {1, 0}};  // B has only 2 rows
  EXPECT_DEATH(d.CheckValid(), "AB_CHECK");
}

TEST(BinnedDatasetDeathTest, OutOfRangeBinAborts) {
  BinnedDataset d;
  d.attributes = {{"A", 3}};
  d.values = {{0, 3}};  // bin 3 out of range for cardinality 3
  EXPECT_DEATH(d.CheckValid(), "AB_CHECK");
}

}  // namespace
}  // namespace bitmap
}  // namespace abitmap
