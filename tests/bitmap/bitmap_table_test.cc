#include "bitmap/bitmap_table.h"

#include <random>

#include "gtest/gtest.h"

namespace abitmap {
namespace bitmap {
namespace {

/// The bitmap table of the paper's Figure 6: 8 rows, attributes A, B, C
/// with 3 bins each. Values are bin ids (0-based; the paper is 1-based).
BinnedDataset Figure6Dataset() {
  BinnedDataset d;
  d.name = "figure6";
  d.attributes = {{"A", 3}, {"B", 3}, {"C", 3}};
  // Column layout in the figure, re-read as per-row bin ids:
  //        A  B  C
  // row 1: 2  1  3   -> 1, 0, 2
  // row 2: 1  3  2   -> 0, 2, 1
  // row 3: 3  2  1   -> 2, 1, 0
  // row 4: 1  2  2   -> 0, 1, 1
  // row 5: 2  3  3   -> 1, 2, 2
  // row 6: 2  1  1   -> 1, 0, 0
  // row 7: 1  2  3   -> 0, 1, 2
  // row 8: 3  3  1   -> 2, 2, 0
  d.values = {
      {1, 0, 2, 0, 1, 1, 0, 2},  // A
      {0, 2, 1, 1, 2, 0, 1, 2},  // B
      {2, 1, 0, 1, 2, 0, 2, 0},  // C
  };
  return d;
}

TEST(BitmapTableTest, BuildShape) {
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.num_attributes(), 3u);
  EXPECT_EQ(t.num_columns(), 9u);
  // Equality encoding: one set bit per attribute per row.
  EXPECT_EQ(t.TotalSetBits(), 24u);
}

TEST(BitmapTableTest, OneBitPerAttributePerRow) {
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  for (uint64_t i = 0; i < t.num_rows(); ++i) {
    for (uint32_t a = 0; a < 3; ++a) {
      int ones = 0;
      for (uint32_t b = 0; b < 3; ++b) {
        ones += t.Get(i, t.mapping().GlobalColumn(a, b));
      }
      EXPECT_EQ(ones, 1) << "row " << i << " attr " << a;
    }
  }
}

TEST(BitmapTableTest, ColumnContents) {
  BinnedDataset d = Figure6Dataset();
  BitmapTable t = BitmapTable::Build(d);
  // Column A bin 0 must be set exactly at rows where A's value is 0.
  const util::BitVector& a1 = t.column(0, 0);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a1.Get(i), d.values[0][i] == 0u) << i;
  }
  EXPECT_EQ(t.ColumnSetBits(0), 3u);
}

TEST(BitmapTableTest, UncompressedBytes) {
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  EXPECT_EQ(t.UncompressedBytes(), 8u * 9u / 8u);
}

TEST(BitmapTableTest, PointQueryOverAllRows) {
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  BitmapQuery q;
  q.ranges = {{0, 1, 1}};  // A == bin 1
  std::vector<bool> result = t.Evaluate(q);
  ASSERT_EQ(result.size(), 8u);
  BinnedDataset d = Figure6Dataset();
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result[i], d.values[0][i] == 1u) << i;
  }
}

TEST(BitmapTableTest, PaperQ3RangeWithRowSubset) {
  // Q3 = {(A, 1, 2), (R, 4..8)} in the paper's 1-based terms: rows 4-8
  // where A falls in bin 1 or 2. Zero-based: rows 3..7, bins 0..1.
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  BitmapQuery q;
  q.ranges = {{0, 0, 1}};
  q.rows = RowRange(3, 7);
  std::vector<bool> result = t.Evaluate(q);
  // Paper's exact answer: T = {0,1,1,1,0} -> A-values rows 4..8 are
  // 1,2,2,1,3 (1-based bins) -> in {1,2}: yes,yes,yes,yes,no... the paper
  // says {0,1,1,1,0}; our Figure6Dataset reconstruction differs in the
  // unknown figure values, so check against the dataset itself.
  BinnedDataset d = Figure6Dataset();
  for (int idx = 0; idx < 5; ++idx) {
    uint64_t row = 3 + idx;
    EXPECT_EQ(result[idx], d.values[0][row] <= 1u) << row;
  }
}

TEST(BitmapTableTest, TwoDimensionalQuery) {
  // Q4-style: A in bins {0,1} AND B in bins {1,2}, rows 3..7.
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  BinnedDataset d = Figure6Dataset();
  BitmapQuery q;
  q.ranges = {{0, 0, 1}, {1, 1, 2}};
  q.rows = RowRange(3, 7);
  std::vector<bool> result = t.Evaluate(q);
  for (int idx = 0; idx < 5; ++idx) {
    uint64_t row = 3 + idx;
    bool expected = d.values[0][row] <= 1u && d.values[1][row] >= 1u;
    EXPECT_EQ(result[idx], expected) << row;
  }
}

TEST(BitmapTableTest, AlgebraMatchesDirectEvaluation) {
  std::mt19937_64 rng(31);
  BinnedDataset d;
  d.attributes = {{"A", 7}, {"B", 4}, {"C", 9}};
  for (const AttributeInfo& a : d.attributes) {
    std::vector<uint32_t> col;
    for (int i = 0; i < 500; ++i) col.push_back(rng() % a.cardinality);
    d.values.push_back(col);
  }
  BitmapTable t = BitmapTable::Build(d);
  for (int trial = 0; trial < 50; ++trial) {
    BitmapQuery q;
    uint32_t num_ranges = 1 + rng() % 3;
    for (uint32_t r = 0; r < num_ranges; ++r) {
      uint32_t attr = rng() % 3;
      uint32_t c = d.attributes[attr].cardinality;
      uint32_t lo = rng() % c;
      uint32_t hi = lo + rng() % (c - lo);
      q.ranges.push_back({attr, lo, hi});
    }
    if (trial % 2 == 0) {
      uint64_t lo = rng() % 400;
      q.rows = RowRange(lo, lo + rng() % (500 - lo));
    }
    EXPECT_EQ(t.Evaluate(q), t.EvaluateViaAlgebra(q)) << trial;
  }
}

TEST(BitmapTableTest, EmptyRangesMatchesAllRows) {
  BitmapTable t = BitmapTable::Build(Figure6Dataset());
  BitmapQuery q;  // no constraints
  std::vector<bool> result = t.Evaluate(q);
  ASSERT_EQ(result.size(), 8u);
  for (bool b : result) EXPECT_TRUE(b);
  EXPECT_EQ(t.EvaluateViaAlgebra(q), result);
}

TEST(RowRangeTest, InclusiveBounds) {
  std::vector<uint64_t> r = RowRange(3, 5);
  std::vector<uint64_t> expected = {3, 4, 5};
  EXPECT_EQ(r, expected);
  EXPECT_EQ(RowRange(7, 7).size(), 1u);
}

}  // namespace
}  // namespace bitmap
}  // namespace abitmap
