#include "bitmap/encoding.h"

#include <random>
#include <tuple>

#include "gtest/gtest.h"

namespace abitmap {
namespace bitmap {
namespace {

std::vector<uint32_t> RandomValues(uint64_t rows, uint32_t cardinality,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint32_t> v;
  v.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) v.push_back(rng() % cardinality);
  return v;
}

util::BitVector ExactRange(const std::vector<uint32_t>& values, uint32_t lo,
                           uint32_t hi) {
  util::BitVector out(values.size());
  for (uint64_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] <= hi) out.Set(i);
  }
  return out;
}

TEST(RangeEncodedTest, ColumnCountIsCardinalityMinusOne) {
  std::vector<uint32_t> values = {0, 1, 2, 3, 2, 1};
  RangeEncodedAttribute enc = RangeEncodedAttribute::Build(values, 4);
  EXPECT_EQ(enc.num_columns(), 3u);
  EXPECT_EQ(enc.cardinality(), 4u);
}

TEST(RangeEncodedTest, ColumnJIsLessEqualJ) {
  std::vector<uint32_t> values = {0, 1, 2, 3, 2, 1};
  RangeEncodedAttribute enc = RangeEncodedAttribute::Build(values, 4);
  for (uint32_t j = 0; j < 3; ++j) {
    for (uint64_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(enc.column(j).Get(i), values[i] <= j) << i << " " << j;
    }
  }
}

TEST(RangeEncodedTest, CardinalityOneHasNoColumns) {
  std::vector<uint32_t> values = {0, 0, 0};
  RangeEncodedAttribute enc = RangeEncodedAttribute::Build(values, 1);
  EXPECT_EQ(enc.num_columns(), 0u);
  EXPECT_EQ(enc.EvalRange(0, 0).Count(), 3u);
}

TEST(IntervalEncodedTest, ColumnCountRoughlyHalves) {
  std::vector<uint32_t> values = RandomValues(100, 10, 1);
  IntervalEncodedAttribute enc = IntervalEncodedAttribute::Build(values, 10);
  EXPECT_EQ(enc.interval_width(), 5u);
  EXPECT_EQ(enc.num_columns(), 6u);  // C - m + 1
}

// Exhaustive correctness sweep over every (cardinality, lo, hi): both
// encodings must reproduce the exact range result. This is also the proof
// that the narrow-range case analysis (F1/F2/F3) covers all cases.
class EncodingSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EncodingSweepTest, RangeEncodingExhaustive) {
  uint32_t cardinality = GetParam();
  std::vector<uint32_t> values = RandomValues(257, cardinality, cardinality);
  RangeEncodedAttribute enc = RangeEncodedAttribute::Build(values, cardinality);
  for (uint32_t lo = 0; lo < cardinality; ++lo) {
    for (uint32_t hi = lo; hi < cardinality; ++hi) {
      EXPECT_EQ(enc.EvalRange(lo, hi), ExactRange(values, lo, hi))
          << "C=" << cardinality << " [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(EncodingSweepTest, IntervalEncodingExhaustive) {
  uint32_t cardinality = GetParam();
  std::vector<uint32_t> values = RandomValues(257, cardinality, cardinality);
  IntervalEncodedAttribute enc =
      IntervalEncodedAttribute::Build(values, cardinality);
  for (uint32_t lo = 0; lo < cardinality; ++lo) {
    for (uint32_t hi = lo; hi < cardinality; ++hi) {
      EXPECT_EQ(enc.EvalRange(lo, hi), ExactRange(values, lo, hi))
          << "C=" << cardinality << " [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(EncodingSweepTest, IntervalEqualityExhaustive) {
  uint32_t cardinality = GetParam();
  std::vector<uint32_t> values = RandomValues(100, cardinality, 99);
  IntervalEncodedAttribute enc =
      IntervalEncodedAttribute::Build(values, cardinality);
  for (uint32_t v = 0; v < cardinality; ++v) {
    EXPECT_EQ(enc.EvalEquals(v), ExactRange(values, v, v)) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, EncodingSweepTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u,
                                           15u, 16u, 25u, 50u));

TEST(EncodingComparisonTest, IntervalUsesFewerColumnsThanEquality) {
  // The Chan-Ioannidis space claim: ~C/2 + 1 columns vs C.
  for (uint32_t c : {4u, 10u, 50u, 101u}) {
    std::vector<uint32_t> values = RandomValues(64, c, c);
    IntervalEncodedAttribute enc = IntervalEncodedAttribute::Build(values, c);
    EXPECT_LE(enc.num_columns(), c / 2 + 1);
  }
}

}  // namespace
}  // namespace bitmap
}  // namespace abitmap
