// RoaringIndex bit-identity against WahIndex and the uncompressed
// BitmapTable across the seed datasets (scaled), random query shapes,
// forced SIMD dispatch levels, and pool-vs-serial builds.

#include <memory>
#include <random>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "roaring/roaring_index.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "wah/wah_query.h"

namespace abitmap {
namespace roaring {
namespace {

using util::simd::ActiveSimdLevel;
using util::simd::SetSimdLevelForTesting;
using util::simd::SimdLevel;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    SetSimdLevelForTesting(level);
  }
  ~ScopedSimdLevel() { SetSimdLevelForTesting(prev_); }

 private:
  SimdLevel prev_;
};

const SimdLevel kForcedLevels[] = {SimdLevel::kScalar, SimdLevel::kSse2,
                                   SimdLevel::kAvx2, SimdLevel::kNeon};

bitmap::BinnedDataset SmallDataset(uint64_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  bitmap::BinnedDataset d;
  d.name = "small";
  d.attributes = {{"A", 8}, {"B", 5}, {"C", 12}};
  for (const bitmap::AttributeInfo& a : d.attributes) {
    std::vector<uint32_t> col;
    col.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) col.push_back(rng() % a.cardinality);
    d.values.push_back(col);
  }
  return d;
}

std::vector<bitmap::BitmapQuery> RandomQueries(
    const bitmap::BinnedDataset& d, int count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bitmap::BitmapQuery> queries;
  for (int t = 0; t < count; ++t) {
    bitmap::BitmapQuery q;
    uint32_t num_attrs = static_cast<uint32_t>(d.attributes.size());
    uint32_t in_query = 1 + rng() % std::min<uint32_t>(3, num_attrs);
    for (uint32_t a = 0; a < in_query; ++a) {
      uint32_t attr = rng() % num_attrs;
      uint32_t c = d.attributes[attr].cardinality;
      uint32_t lo = rng() % c;
      uint32_t hi = std::min<uint32_t>(lo + rng() % 4, c - 1);
      q.ranges.push_back({attr, lo, hi});
    }
    if (t % 3 == 1) {
      uint64_t rows = d.values[0].size();
      uint64_t lo = rng() % rows;
      q.rows = bitmap::RowRange(lo, std::min(lo + rng() % 500, rows - 1));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectIdenticalToWah(const bitmap::BinnedDataset& d, uint64_t seed) {
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  wah::WahIndex wah_index = wah::WahIndex::Build(table);
  RoaringIndex roaring_index = RoaringIndex::Build(table);
  EXPECT_EQ(roaring_index.num_rows(), table.num_rows());
  EXPECT_EQ(roaring_index.num_columns(), table.num_columns());

  // Column-level round trip: every Roaring column expands to the verbatim
  // column WAH compresses.
  for (uint32_t j = 0; j < roaring_index.num_columns(); ++j) {
    EXPECT_EQ(roaring_index.column(j).ToBitVector(table.num_rows()),
              table.column(j))
        << "column " << j;
  }

  for (const bitmap::BitmapQuery& q : RandomQueries(d, 25, seed)) {
    util::BitVector roaring_bits = roaring_index.ExecuteBitwiseBits(q);
    util::BitVector wah_bits = wah_index.ExecuteBitwiseBits(q);
    EXPECT_EQ(roaring_bits, wah_bits);
    EXPECT_EQ(roaring_index.Evaluate(q), wah_index.Evaluate(q));
    // FindNextSet walks the compressed result identically to the bits.
    const RoaringBitmap compressed = roaring_index.ExecuteBitwise(q);
    uint64_t pos = compressed.FindNextSet(0);
    size_t expect_pos = wah_bits.FindNextSet(0);
    while (expect_pos < wah_bits.size()) {
      ASSERT_EQ(pos, expect_pos);
      pos = compressed.FindNextSet(pos + 1);
      expect_pos = wah_bits.FindNextSet(expect_pos + 1);
    }
    EXPECT_EQ(pos, RoaringBitmap::kNoBit);
  }
}

TEST(RoaringIndexTest, MatchesWahOnSmallRandomDataset) {
  ExpectIdenticalToWah(SmallDataset(3000, 5), 101);
}

TEST(RoaringIndexTest, MatchesWahOnSeedDatasets) {
  ExpectIdenticalToWah(data::MakeUniformDataset(42, 20), 102);
  ExpectIdenticalToWah(data::MakeLandsatDataset(43, 40), 103);
  ExpectIdenticalToWah(data::MakeHepDataset(44, 100), 104);
}

TEST(RoaringIndexTest, MatchesWahUnderForcedSimdLevels) {
  bitmap::BinnedDataset d = SmallDataset(4000, 6);
  for (SimdLevel level : kForcedLevels) {
    ScopedSimdLevel guard(level);
    ExpectIdenticalToWah(d, 105);
  }
}

TEST(RoaringIndexTest, PooledBuildIdenticalToSerial) {
  bitmap::BinnedDataset d = data::MakeLandsatDataset(43, 60);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  RoaringIndex serial = RoaringIndex::Build(table);
  for (int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    RoaringIndex pooled = RoaringIndex::Build(table, &pool);
    ASSERT_EQ(pooled.num_columns(), serial.num_columns());
    for (uint32_t j = 0; j < serial.num_columns(); ++j) {
      EXPECT_EQ(pooled.column(j), serial.column(j)) << "column " << j;
    }
    EXPECT_EQ(pooled.SizeInBytes(), serial.SizeInBytes());
  }
}

TEST(RoaringIndexTest, EmptyAndAllRowQueries) {
  bitmap::BinnedDataset d = SmallDataset(2000, 7);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  RoaringIndex index = RoaringIndex::Build(table);

  // No predicates: every row qualifies.
  bitmap::BitmapQuery all;
  util::BitVector bits = index.ExecuteBitwiseBits(all);
  EXPECT_EQ(bits.Count(), 2000u);

  // Disjoint single-bin predicates can produce an empty result.
  bitmap::BitmapQuery q;
  q.ranges = {{0, 0, 0}, {0, 1, 1}};
  // Rows in bin 0 of A are not in bin 1 of A (equality encoding).
  EXPECT_EQ(index.ExecuteBitwiseBits(q).Count(), 0u);
  EXPECT_EQ(index.ExecuteBitwise(q).FindNextSet(0), RoaringBitmap::kNoBit);
}

TEST(RoaringIndexTest, CensusCountsEveryContainer) {
  bitmap::BinnedDataset d = data::MakeHepDataset(44, 200);
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(d);
  RoaringIndex index = RoaringIndex::Build(table);
  std::vector<uint64_t> census = index.ContainerCensus();
  ASSERT_EQ(census.size(), 3u);
  uint64_t total = census[0] + census[1] + census[2];
  uint64_t expect = 0;
  for (uint32_t j = 0; j < index.num_columns(); ++j) {
    expect += index.column(j).num_containers();
  }
  EXPECT_EQ(total, expect);
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace roaring
}  // namespace abitmap
