// Container-level fuzz parity against BitVector ground truth: every
// representation pair (flat array/bitset x run-optimized) under
// AND/OR/XOR/ANDNOT, across cardinalities straddling the 4096
// promotion/demotion boundary, with the galloping and linear array
// intersections forced in turn (bit-identical by contract) and the word
// kernels forced to every SIMD dispatch level.

#include <algorithm>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "roaring/container.h"
#include "util/bitvector.h"
#include "util/simd.h"

namespace abitmap {
namespace roaring {
namespace {

using util::BitVector;
using util::simd::ActiveSimdLevel;
using util::simd::SetSimdLevelForTesting;
using util::simd::SimdLevel;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    SetSimdLevelForTesting(level);
  }
  ~ScopedSimdLevel() { SetSimdLevelForTesting(prev_); }

 private:
  SimdLevel prev_;
};

class ScopedGallop {
 public:
  explicit ScopedGallop(int force) { Container::SetGallopForTesting(force); }
  ~ScopedGallop() { Container::SetGallopForTesting(-1); }
};

const SimdLevel kForcedLevels[] = {SimdLevel::kScalar, SimdLevel::kSse2,
                                   SimdLevel::kAvx2, SimdLevel::kNeon};

/// Sorted unique values drawn uniformly until `count` distinct.
std::vector<uint16_t> UniformSet(std::mt19937_64* rng, size_t count) {
  std::vector<bool> present(Container::kCapacity, false);
  size_t have = 0;
  while (have < count) {
    uint16_t v = static_cast<uint16_t>((*rng)());
    if (!present[v]) {
      present[v] = true;
      ++have;
    }
  }
  std::vector<uint16_t> out;
  out.reserve(count);
  for (uint32_t v = 0; v < Container::kCapacity; ++v) {
    if (present[v]) out.push_back(static_cast<uint16_t>(v));
  }
  return out;
}

/// Sorted values forming `runs` random runs of length in [1, max_len].
std::vector<uint16_t> RunSet(std::mt19937_64* rng, size_t runs,
                             uint32_t max_len) {
  std::vector<bool> present(Container::kCapacity, false);
  for (size_t r = 0; r < runs; ++r) {
    uint32_t start = static_cast<uint32_t>((*rng)() % Container::kCapacity);
    uint32_t len = 1 + static_cast<uint32_t>((*rng)() % max_len);
    for (uint32_t v = start; v < std::min(start + len, Container::kCapacity);
         ++v) {
      present[v] = true;
    }
  }
  std::vector<uint16_t> out;
  for (uint32_t v = 0; v < Container::kCapacity; ++v) {
    if (present[v]) out.push_back(static_cast<uint16_t>(v));
  }
  return out;
}

BitVector ToBits(const std::vector<uint16_t>& values) {
  BitVector bits(Container::kCapacity);
  for (uint16_t v : values) bits.Set(v);
  return bits;
}

std::vector<uint16_t> FromBits(const BitVector& bits) {
  std::vector<uint16_t> out;
  for (uint32_t v = 0; v < Container::kCapacity; ++v) {
    if (bits.Get(v)) out.push_back(static_cast<uint16_t>(v));
  }
  return out;
}

Container MakeFlat(const std::vector<uint16_t>& values) {
  return Container::FromSortedValues(values.data(), values.size());
}

Container MakeRunOptimized(const std::vector<uint16_t>& values) {
  Container c = MakeFlat(values);
  c.Optimize();
  return c;
}

/// The interesting value-set shapes: empty, singletons, uniform sparse,
/// uniform dense, the exact promotion boundaries, run-heavy, full.
std::vector<std::vector<uint16_t>> FuzzSets(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<uint16_t>> sets;
  sets.push_back({});
  sets.push_back({0});
  sets.push_back({65535});
  sets.push_back(UniformSet(&rng, 37));
  sets.push_back(UniformSet(&rng, 1000));
  sets.push_back(UniformSet(&rng, 4095));  // promotion boundary - 1
  sets.push_back(UniformSet(&rng, 4096));  // at the boundary (still array)
  sets.push_back(UniformSet(&rng, 4097));  // past it (bitset)
  sets.push_back(UniformSet(&rng, 20000));
  sets.push_back(RunSet(&rng, 5, 4000));   // few long runs
  sets.push_back(RunSet(&rng, 300, 40));   // many short runs
  std::vector<uint16_t> full(Container::kCapacity);
  for (uint32_t v = 0; v < Container::kCapacity; ++v) {
    full[v] = static_cast<uint16_t>(v);
  }
  sets.push_back(std::move(full));
  return sets;
}

void ExpectSameSet(const Container& c, const BitVector& expect,
                   const char* what) {
  std::vector<uint16_t> want = FromBits(expect);
  EXPECT_EQ(c.ToArray(), want) << what;
  EXPECT_EQ(c.cardinality(), want.size()) << what;
  // A result container must be in canonical flat form.
  if (c.cardinality() > Container::kArrayMax) {
    EXPECT_EQ(c.kind(), ContainerKind::kBitset) << what;
  } else {
    EXPECT_NE(c.kind(), ContainerKind::kRun) << what;
  }
}

TEST(RoaringContainerTest, ConstructionRoundTripsAllShapes) {
  for (const auto& values : FuzzSets(7)) {
    Container flat = MakeFlat(values);
    EXPECT_EQ(flat.ToArray(), values);
    EXPECT_EQ(flat.cardinality(), values.size());
    EXPECT_EQ(flat.kind(), values.size() > Container::kArrayMax
                               ? ContainerKind::kBitset
                               : ContainerKind::kArray);

    BitVector bits = ToBits(values);
    Container from_words =
        Container::FromWords(bits.words().data(), bits.words().size());
    EXPECT_EQ(from_words, flat);

    Container optimized = MakeRunOptimized(values);
    EXPECT_EQ(optimized.ToArray(), values);
    EXPECT_EQ(optimized.cardinality(), flat.cardinality());
    EXPECT_EQ(optimized, flat);  // set equality across representations
  }
}

TEST(RoaringContainerTest, OptimizePicksSmallestRepresentation) {
  // 3 runs of 1000 -> 12 run bytes vs 6000 array bytes: must become runs.
  std::vector<uint16_t> runs;
  for (uint32_t base : {100u, 10000u, 30000u}) {
    for (uint32_t v = base; v < base + 1000; ++v) {
      runs.push_back(static_cast<uint16_t>(v));
    }
  }
  Container c = MakeRunOptimized(runs);
  EXPECT_EQ(c.kind(), ContainerKind::kRun);
  EXPECT_EQ(c.CountRuns(), 3u);
  EXPECT_EQ(c.SizeInBytes(), 3u * 4u);

  // Uniform sparse values: runs would be 2x the array size; stays array.
  std::mt19937_64 rng(11);
  Container sparse = MakeRunOptimized(UniformSet(&rng, 500));
  EXPECT_EQ(sparse.kind(), ContainerKind::kArray);

  // Dense but fragmented: bitset stays bitset unless runs win.
  Container dense = MakeRunOptimized(UniformSet(&rng, 30000));
  EXPECT_EQ(dense.kind(), ContainerKind::kBitset);

  // A full container is one run: 4 bytes beats 8 KiB.
  Container full = Container::FullRange(Container::kCapacity);
  EXPECT_EQ(full.kind(), ContainerKind::kRun);
  EXPECT_EQ(full.cardinality(), Container::kCapacity);
}

TEST(RoaringContainerTest, AppendOrderedPromotesAtBoundary) {
  Container c;
  for (uint32_t v = 0; v < 5000; ++v) {
    c.AppendOrdered(static_cast<uint16_t>(v * 2));  // no runs form
    EXPECT_EQ(c.cardinality(), v + 1);
    EXPECT_EQ(c.kind(), v + 1 > Container::kArrayMax ? ContainerKind::kBitset
                                                     : ContainerKind::kArray);
  }
  for (uint32_t v = 0; v < 5000; ++v) {
    EXPECT_TRUE(c.Get(static_cast<uint16_t>(v * 2)));
    EXPECT_FALSE(c.Get(static_cast<uint16_t>(v * 2 + 1)));
  }
}

TEST(RoaringContainerTest, GetAndNextSetAgreeWithGroundTruth) {
  for (const auto& values : FuzzSets(13)) {
    BitVector bits = ToBits(values);
    for (Container c : {MakeFlat(values), MakeRunOptimized(values)}) {
      std::mt19937_64 rng(17);
      for (int i = 0; i < 300; ++i) {
        uint16_t v = static_cast<uint16_t>(rng());
        EXPECT_EQ(c.Get(v), bits.Get(v));
      }
      // NextSet walk enumerates exactly the set.
      std::vector<uint16_t> walked;
      uint32_t pos = c.NextSet(0);
      while (pos != Container::kNoValue) {
        walked.push_back(static_cast<uint16_t>(pos));
        if (pos + 1 >= Container::kCapacity) break;
        pos = c.NextSet(pos + 1);
      }
      EXPECT_EQ(walked, values);
    }
  }
}

TEST(RoaringContainerTest, CountRunsMatchesDefinitionEverywhere) {
  for (const auto& values : FuzzSets(19)) {
    uint32_t expect = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if (i == 0 || values[i] != values[i - 1] + 1) ++expect;
    }
    EXPECT_EQ(MakeFlat(values).CountRuns(), expect);
    EXPECT_EQ(MakeRunOptimized(values).CountRuns(), expect);
  }
}

/// The operation fuzz matrix: shapes x shapes x representations x ops,
/// checked against BitVector word ops, at one forced SIMD level.
void RunOpMatrix(uint64_t seed) {
  std::vector<std::vector<uint16_t>> sets = FuzzSets(seed);
  for (size_t si = 0; si < sets.size(); ++si) {
    for (size_t sj = 0; sj < sets.size(); ++sj) {
      const auto& va = sets[si];
      const auto& vb = sets[sj];
      BitVector ba = ToBits(va), bb = ToBits(vb);
      BitVector expect_and = ba, expect_or = ba, expect_xor = ba,
                expect_andnot = ba;
      expect_and.AndWith(bb);
      expect_or.OrWith(bb);
      expect_xor.XorWith(bb);
      expect_andnot.AndNotWith(bb);
      const Container reps_a[] = {MakeFlat(va), MakeRunOptimized(va)};
      const Container reps_b[] = {MakeFlat(vb), MakeRunOptimized(vb)};
      for (const Container& a : reps_a) {
        for (const Container& b : reps_b) {
          ExpectSameSet(And(a, b), expect_and, "And");
          ExpectSameSet(Or(a, b), expect_or, "Or");
          ExpectSameSet(Xor(a, b), expect_xor, "Xor");
          ExpectSameSet(AndNot(a, b), expect_andnot, "AndNot");
          EXPECT_EQ(AndCardinality(a, b), And(a, b).cardinality());
        }
      }
    }
  }
}

TEST(RoaringContainerTest, OpFuzzParityDefaultDispatch) { RunOpMatrix(23); }

TEST(RoaringContainerTest, OpFuzzParityForcedSimdLevels) {
  for (SimdLevel level : kForcedLevels) {
    ScopedSimdLevel guard(level);
    RunOpMatrix(29);
  }
}

TEST(RoaringContainerTest, GallopAndLinearIntersectionsAreBitIdentical) {
  std::mt19937_64 rng(31);
  // Asymmetric array pairs are where galloping engages; include same-size
  // pairs and boundary sizes too.
  const size_t sizes[] = {1, 7, 64, 4096};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      std::vector<uint16_t> va = UniformSet(&rng, na);
      std::vector<uint16_t> vb = UniformSet(&rng, nb);
      Container a = MakeFlat(va), b = MakeFlat(vb);
      ASSERT_EQ(a.kind(), ContainerKind::kArray);
      ASSERT_EQ(b.kind(), ContainerKind::kArray);
      Container gallop_result, linear_result;
      uint32_t gallop_count, linear_count;
      {
        ScopedGallop force(1);
        gallop_result = And(a, b);
        gallop_count = AndCardinality(a, b);
      }
      {
        ScopedGallop force(0);
        linear_result = And(a, b);
        linear_count = AndCardinality(a, b);
      }
      EXPECT_EQ(gallop_result, linear_result) << na << "x" << nb;
      EXPECT_EQ(gallop_count, linear_count) << na << "x" << nb;
      EXPECT_EQ(And(a, b), linear_result) << na << "x" << nb;  // heuristic
    }
  }
}

TEST(RoaringContainerTest, PromotionAndDemotionAcrossOps) {
  // Or of two 3000-value arrays with little overlap crosses 4096: bitset.
  std::mt19937_64 rng(37);
  std::vector<uint16_t> lo = UniformSet(&rng, 3000);
  std::vector<uint16_t> hi;
  for (uint16_t v : UniformSet(&rng, 3000)) {
    hi.push_back(static_cast<uint16_t>(v | 0x8000));
  }
  std::sort(hi.begin(), hi.end());
  hi.erase(std::unique(hi.begin(), hi.end()), hi.end());
  Container a = MakeFlat(lo), b = MakeFlat(hi);
  Container u = Or(a, b);
  EXPECT_GT(u.cardinality(), Container::kArrayMax);
  EXPECT_EQ(u.kind(), ContainerKind::kBitset);

  // And of two dense bitsets with small overlap demotes to array.
  std::vector<uint16_t> dense_lo, dense_hi;
  for (uint32_t v = 0; v < 33000; ++v) {
    dense_lo.push_back(static_cast<uint16_t>(v));
  }
  for (uint32_t v = 32800; v < 65536; ++v) {
    dense_hi.push_back(static_cast<uint16_t>(v));
  }
  Container da = MakeFlat(dense_lo), db = MakeFlat(dense_hi);
  ASSERT_EQ(da.kind(), ContainerKind::kBitset);
  ASSERT_EQ(db.kind(), ContainerKind::kBitset);
  Container inter = And(da, db);
  EXPECT_EQ(inter.cardinality(), 200u);
  EXPECT_EQ(inter.kind(), ContainerKind::kArray);
}

TEST(RoaringContainerTest, SizeAccountingByKind) {
  std::mt19937_64 rng(41);
  Container array = MakeFlat(UniformSet(&rng, 100));
  EXPECT_EQ(array.SizeInBytes(), 200u);
  Container bitset = MakeFlat(UniformSet(&rng, 10000));
  EXPECT_EQ(bitset.SizeInBytes(), size_t{Container::kBitsetWords} * 8);
  Container run = Container::FullRange(1000);
  EXPECT_EQ(run.SizeInBytes(), 4u);
}

}  // namespace
}  // namespace roaring
}  // namespace abitmap
