#!/usr/bin/env bash
# Tier-1 gate: configure + build RelWithDebInfo, run the tier-1 test
# suite, and smoke the batched-evaluation benchmark. Intended for CI and
# as the pre-commit check — a clean exit means the tree is shippable.
#
# When the toolchain supports -fsanitize=thread, a second tier-1 pass
# runs under ThreadSanitizer (AB_THREAD_SANITIZER=ON) to exercise the
# concurrent build/evaluate paths. Set AB_CHECK_TSAN=0 to skip it, or
# AB_CHECK_TSAN=1 to make an unsupported toolchain a hard failure.
#
# Likewise, when -fsanitize=address links, a tier-1 pass runs under
# ASan+UBSan (AB_ADDRESS_SANITIZER=ON) to check the SIMD gather/tail
# paths for out-of-bounds reads and the hash kernels for UB. Set
# AB_CHECK_ASAN=0 to skip, AB_CHECK_ASAN=1 to require it.
#
# A second tier-1 configuration always runs with the observability layer
# compiled out (-DAB_DISABLE_STATS=ON): the stats macros must drop their
# arguments unevaluated and the snapshot API must stay link-compatible,
# which only a full build+test of that configuration proves. Set
# AB_CHECK_STATS_OFF=0 to skip it.
#
# Both configurations also get an endpoint smoke: ab_stats --serve=0
# --watch=1 runs a live parallel workload while this script fetches
# /healthz and /metrics over loopback (plain bash /dev/tcp, no curl
# dependency) and checks the payloads.
#
# Set AB_CHECK_COVERAGE=1 to add a gcovr line-coverage pass (builds with
# AB_COVERAGE=ON, reruns tier-1, writes coverage.txt into the build dir).
# It is off by default and a hard error when requested without gcovr on
# PATH.
#
# A build-scaling smoke runs a downsized bench_build_time thread sweep
# and checks the per-dataset "scaling_ok" flag (the slowest parallel
# point must stay within 5% of serial — the contention-free build may
# only tie serial on small hosts, never lose). Advisory by default
# because CI hosts are noisy and often single-core; set
# AB_CHECK_SCALING=strict to make a failed sweep fatal (recommended
# locally on multi-core machines) or AB_CHECK_SCALING=0 to skip.
#
# A serving smoke boots tools/ab_serve on an ephemeral port, drives it
# with a 2-second ab_loadgen burst, and requires qps > 0 plus a clean
# SIGINT shutdown. Advisory by default; AB_CHECK_SERVE=strict makes a
# failure fatal, AB_CHECK_SERVE=0 skips.
#
# A mutable-ingest smoke boots ab_serve again and interleaves a loadgen
# query burst with POST /insert bursts on the live server: every insert
# must answer ok, the loadgen must finish with zero errors, /metrics
# must show abitmap_engine_ingest_rows > 0, and SIGINT must still stop
# the server cleanly. Advisory by default; AB_CHECK_MUTABLE=strict makes
# a failure fatal, AB_CHECK_MUTABLE=0 skips.
#
# An observability smoke boots ab_serve with --slow-ms=0 (retain every
# request) and --telemetry-ms=200, drives an ab_loadgen --timings burst,
# and checks the request-tracing surface end to end: the loadgen JSON
# must carry the per-stage "stage_us" aggregates, /slow.json must show
# retained records with trace ids, /timeseries.json must have collected
# at least two ticker samples, and after a POST /insert the /metrics
# gauge abitmap_engine_delta_live must be nonzero. Advisory by default;
# AB_CHECK_OBS_SERVE=strict makes a failure fatal, =0 skips.
#
# Usage: tools/check.sh [build-dir]   (default: build/check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build/check}"
jobs="$(nproc 2>/dev/null || echo 2)"

tsan_supported() {
  local probe_dir
  probe_dir="$(mktemp -d)"
  trap 'rm -rf "$probe_dir"' RETURN
  printf 'int main(){return 0;}\n' >"$probe_dir/probe.cc"
  "${CXX:-c++}" -fsanitize=thread -o "$probe_dir/probe" \
    "$probe_dir/probe.cc" >/dev/null 2>&1
}

asan_supported() {
  local probe_dir
  probe_dir="$(mktemp -d)"
  trap 'rm -rf "$probe_dir"' RETURN
  printf 'int main(){return 0;}\n' >"$probe_dir/probe.cc"
  "${CXX:-c++}" -fsanitize=address,undefined -o "$probe_dir/probe" \
    "$probe_dir/probe.cc" >/dev/null 2>&1
}

# Fetches an HTTP path from 127.0.0.1:$1 with bash's /dev/tcp (fd 3 both
# ways); prints the full response. No curl/wget needed.
http_get() {
  local port="$1" path="$2"
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n' "$path" >&3
  cat <&3
  exec 3<&- 3>&-
}

# POSTs a body to an HTTP path on 127.0.0.1:$1 with bash's /dev/tcp;
# prints the full response.
http_post() {
  local port="$1" path="$2" body="$3"
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'POST %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %s\r\n\r\n%s' \
    "$path" "${#body}" "$body" >&3
  cat <&3
  exec 3<&- 3>&-
}

# Endpoint smoke against one build tree: start ab_stats serving on an
# ephemeral port with a live parallel workload (--watch re-runs queries
# each second), parse the announced port, fetch /healthz and /metrics,
# check the payloads, then SIGINT the server and require a clean exit.
endpoint_smoke() {
  local dir="$1" label="$2" log port pid status health metrics
  log="$dir/ab_stats_serve.log"
  echo "== endpoint smoke ($label) =="
  "$dir/tools/ab_stats" --serve=0 --watch=1 --threads=4 --scale=50 \
    >/dev/null 2>"$log" &
  pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$log" | head -1)"
    [ -n "$port" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "error: ab_stats --serve exited early; log:" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "error: ab_stats --serve never announced a port; log:" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  health="$(http_get "$port" /healthz)"
  case "$health" in
    *"200 OK"*ok*) ;;
    *)
      echo "error: /healthz did not answer ok; got:" >&2
      echo "$health" >&2
      kill "$pid" 2>/dev/null || true
      return 1
      ;;
  esac
  metrics="$(http_get "$port" /metrics)"
  case "$metrics" in
    *abitmap_build_info*) ;;
    *)
      echo "error: /metrics lacks abitmap_build_info; got:" >&2
      echo "$metrics" | head -5 >&2
      kill "$pid" 2>/dev/null || true
      return 1
      ;;
  esac
  kill -INT "$pid"
  status=0
  wait "$pid" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "error: ab_stats --serve exited with status $status" >&2
    return 1
  fi
  echo "endpoint smoke ($label): /healthz + /metrics ok on port $port"
}

echo "== configure (RelWithDebInfo) =="
cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$jobs"

endpoint_smoke "$build_dir" "default"

if [ "${AB_CHECK_STATS_OFF:-1}" != "0" ]; then
  stats_off_dir="$build_dir-stats-off"
  echo "== configure (AB_DISABLE_STATS=ON) =="
  cmake -S "$repo_root" -B "$stats_off_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAB_DISABLE_STATS=ON >/dev/null
  echo "== build (stats off) =="
  cmake --build "$stats_off_dir" -j "$jobs"
  echo "== tier-1 tests (stats off) =="
  ctest --test-dir "$stats_off_dir" -L tier1 --output-on-failure -j "$jobs"

  endpoint_smoke "$stats_off_dir" "stats off"
fi

if [ "${AB_CHECK_COVERAGE:-0}" = "1" ]; then
  if ! command -v gcovr >/dev/null 2>&1; then
    echo "error: AB_CHECK_COVERAGE=1 but gcovr is not on PATH" >&2
    exit 1
  fi
  cov_dir="$build_dir-coverage"
  echo "== configure (coverage) =="
  cmake -S "$repo_root" -B "$cov_dir" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DAB_COVERAGE=ON >/dev/null
  echo "== build (coverage) =="
  cmake --build "$cov_dir" -j "$jobs"
  echo "== tier-1 tests (coverage) =="
  ctest --test-dir "$cov_dir" -L tier1 --output-on-failure -j "$jobs"
  echo "== gcovr =="
  gcovr --root "$repo_root" --filter "$repo_root/src/" \
    --print-summary "$cov_dir" | tee "$cov_dir/coverage.txt"
fi

if [ "${AB_CHECK_TSAN:-auto}" != "0" ]; then
  if tsan_supported; then
    tsan_dir="$build_dir-tsan"
    echo "== configure (ThreadSanitizer) =="
    cmake -S "$repo_root" -B "$tsan_dir" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAB_THREAD_SANITIZER=ON >/dev/null
    echo "== build (TSan) =="
    cmake --build "$tsan_dir" -j "$jobs"
    echo "== tier-1 tests (TSan) =="
    ctest --test-dir "$tsan_dir" -L tier1 --output-on-failure -j "$jobs"
  elif [ "${AB_CHECK_TSAN:-auto}" = "1" ]; then
    echo "error: AB_CHECK_TSAN=1 but the toolchain cannot link -fsanitize=thread" >&2
    exit 1
  else
    echo "== tier-1 tests (TSan) skipped: toolchain lacks -fsanitize=thread =="
  fi
fi

if [ "${AB_CHECK_ASAN:-auto}" != "0" ]; then
  if asan_supported; then
    asan_dir="$build_dir-asan"
    echo "== configure (ASan+UBSan) =="
    cmake -S "$repo_root" -B "$asan_dir" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAB_ADDRESS_SANITIZER=ON >/dev/null
    echo "== build (ASan) =="
    cmake --build "$asan_dir" -j "$jobs"
    echo "== tier-1 tests (ASan) =="
    ctest --test-dir "$asan_dir" -L tier1 --output-on-failure -j "$jobs"
  elif [ "${AB_CHECK_ASAN:-auto}" = "1" ]; then
    echo "error: AB_CHECK_ASAN=1 but the toolchain cannot link -fsanitize=address,undefined" >&2
    exit 1
  else
    echo "== tier-1 tests (ASan) skipped: toolchain lacks -fsanitize=address =="
  fi
fi

if [ "${AB_CHECK_SCALING:-advisory}" != "0" ]; then
  echo "== build-scaling smoke (thread sweep) =="
  scaling_dir="$build_dir/scaling-smoke"
  mkdir -p "$scaling_dir"
  # Run from a scratch dir: the bench writes BENCH_build.json into its
  # cwd and the smoke must not clobber the checked-in full-scale record.
  (cd "$scaling_dir" &&
    ABITMAP_BENCH_SCALE="${AB_CHECK_SCALING_SCALE:-20}" ABITMAP_BENCH_REPS=3 \
      "$build_dir/bench/bench_build_time") \
    >"$scaling_dir/bench_build_time.log" 2>&1
  if grep -q '"scaling_ok": false' "$scaling_dir/BENCH_build.json"; then
    echo "build-scaling smoke: parallel build slower than serial beyond" \
      "tolerance on $(grep -c '"scaling_ok": false' \
      "$scaling_dir/BENCH_build.json") dataset(s);" \
      "see $scaling_dir/bench_build_time.log" >&2
    if [ "${AB_CHECK_SCALING:-advisory}" = "strict" ]; then
      echo "error: AB_CHECK_SCALING=strict and the sweep regressed" >&2
      exit 1
    fi
    echo "build-scaling smoke: ADVISORY failure (host may be noisy or" \
      "single-core; AB_CHECK_SCALING=strict to enforce)" >&2
  else
    echo "build-scaling smoke: scaling_ok on all datasets"
  fi
fi

if [ "${AB_CHECK_BACKEND:-advisory}" != "0" ]; then
  echo "== backend-selector smoke =="
  # Advisory check of the density-adaptive exact-backend selector: the
  # shaped-column test asserts Roaring on sparse scatter, WAH on dense
  # run-heavy, BBC/AB on their regimes, and the forced-override test
  # proves AB_BACKEND plumbing. Advisory by default (the tier-1 suite
  # already ran these); AB_CHECK_BACKEND=strict makes a failure fatal.
  backend_filter='ExactIndexTest.SelectorPicksExpectedBackendsOnShapedColumns'
  backend_filter="$backend_filter:HybridEngineTest.BackendOptionForcesEveryColumn"
  backend_filter="$backend_filter:HybridEngineTest.AbBackendEnvOverridesOption"
  if "$build_dir/tests/engine_test" --gtest_filter="$backend_filter" \
    --gtest_brief=1 >"$build_dir/backend_smoke.log" 2>&1; then
    echo "backend-selector smoke: selector and AB_BACKEND override ok"
  else
    echo "backend-selector smoke: FAILED; see $build_dir/backend_smoke.log" >&2
    if [ "${AB_CHECK_BACKEND:-advisory}" = "strict" ]; then
      echo "error: AB_CHECK_BACKEND=strict and the smoke failed" >&2
      exit 1
    fi
    echo "backend-selector smoke: ADVISORY failure" >&2
  fi
fi

if [ "${AB_CHECK_SERVE:-advisory}" != "0" ]; then
  echo "== serve smoke (ab_serve + ab_loadgen) =="
  # Boot the query server on an ephemeral port, drive it with a short
  # closed-loop loadgen burst, require qps > 0 with zero transport
  # errors, then SIGINT the server and require a clean exit. Advisory by
  # default (loopback throughput on shared CI hosts is noisy);
  # AB_CHECK_SERVE=strict makes any failure fatal, =0 skips.
  serve_ok=1
  serve_log="$build_dir/ab_serve_smoke.log"
  serve_rows=20000
  "$build_dir/tools/ab_serve" --port=0 --rows="$serve_rows" --workers=2 \
    >/dev/null 2>"$serve_log" &
  serve_pid=$!
  serve_port=""
  for _ in $(seq 1 100); do
    serve_port="$(sed -n \
      's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$serve_log" | head -1)"
    [ -n "$serve_port" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
      echo "serve smoke: ab_serve exited early; log:" >&2
      cat "$serve_log" >&2
      serve_ok=0
      break
    fi
    sleep 0.1
  done
  if [ "$serve_ok" = "1" ] && [ -z "$serve_port" ]; then
    echo "serve smoke: ab_serve never announced a port" >&2
    kill "$serve_pid" 2>/dev/null || true
    serve_ok=0
  fi
  if [ "$serve_ok" = "1" ]; then
    loadgen_json="$build_dir/ab_loadgen_smoke.json"
    if "$build_dir/tools/ab_loadgen" --port="$serve_port" \
      --rows="$serve_rows" --connections=4 --duration=2 --json \
      >"$loadgen_json" 2>>"$serve_log"; then
      if grep -q '"errors": 0' "$loadgen_json" &&
        ! grep -q '"qps": 0\.0' "$loadgen_json"; then
        echo "serve smoke: $(tr -d '\n' <"$loadgen_json" | head -c 160)"
      else
        echo "serve smoke: loadgen reported errors or zero qps:" >&2
        cat "$loadgen_json" >&2
        serve_ok=0
      fi
    else
      echo "serve smoke: ab_loadgen failed; see $serve_log" >&2
      serve_ok=0
    fi
    kill -INT "$serve_pid" 2>/dev/null || true
    serve_status=0
    wait "$serve_pid" || serve_status=$?
    if [ "$serve_status" -ne 0 ]; then
      echo "serve smoke: ab_serve exited with status $serve_status" >&2
      serve_ok=0
    fi
  fi
  if [ "$serve_ok" != "1" ]; then
    if [ "${AB_CHECK_SERVE:-advisory}" = "strict" ]; then
      echo "error: AB_CHECK_SERVE=strict and the smoke failed" >&2
      exit 1
    fi
    echo "serve smoke: ADVISORY failure (AB_CHECK_SERVE=strict to enforce)" >&2
  else
    echo "serve smoke: server + loadgen + clean shutdown ok on port $serve_port"
  fi
fi

if [ "${AB_CHECK_MUTABLE:-advisory}" != "0" ]; then
  echo "== mutable-ingest smoke (ab_serve + loadgen + /insert) =="
  # Queries and streaming inserts on the same live server: the loadgen
  # hammers /query-equivalent binary frames while this script lands
  # /insert bursts on the HTTP side. Ingest must not disturb serving
  # (zero loadgen errors) and must be observable (every insert answers
  # ok; /metrics shows the ingested rows).
  mut_ok=1
  mut_log="$build_dir/ab_serve_mutable_smoke.log"
  mut_rows=20000
  "$build_dir/tools/ab_serve" --port=0 --rows="$mut_rows" --workers=2 \
    >/dev/null 2>"$mut_log" &
  mut_pid=$!
  mut_port=""
  for _ in $(seq 1 100); do
    mut_port="$(sed -n \
      's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$mut_log" | head -1)"
    [ -n "$mut_port" ] && break
    if ! kill -0 "$mut_pid" 2>/dev/null; then
      echo "mutable smoke: ab_serve exited early; log:" >&2
      cat "$mut_log" >&2
      mut_ok=0
      break
    fi
    sleep 0.1
  done
  if [ "$mut_ok" = "1" ] && [ -z "$mut_port" ]; then
    echo "mutable smoke: ab_serve never announced a port" >&2
    kill "$mut_pid" 2>/dev/null || true
    mut_ok=0
  fi
  if [ "$mut_ok" = "1" ]; then
    mut_json="$build_dir/ab_loadgen_mutable_smoke.json"
    "$build_dir/tools/ab_loadgen" --port="$mut_port" --rows="$mut_rows" \
      --connections=4 --duration=2 --json \
      >"$mut_json" 2>>"$mut_log" &
    mut_loadgen_pid=$!
    # Insert bursts while the loadgen is live: 3 bursts of 10 rows.
    mut_inserts=0
    for burst in 1 2 3; do
      for i in $(seq 1 10); do
        resp="$(http_post "$mut_port" /insert \
          "{\"values\":[$((burst * 10 + i)).5,$i,3.0]}" || true)"
        case "$resp" in
          *'"status":"ok"'*) mut_inserts=$((mut_inserts + 1)) ;;
          *)
            echo "mutable smoke: insert rejected; response:" >&2
            echo "$resp" >&2
            mut_ok=0
            ;;
        esac
      done
      sleep 0.3
    done
    if ! wait "$mut_loadgen_pid"; then
      echo "mutable smoke: ab_loadgen failed; see $mut_log" >&2
      mut_ok=0
    elif ! grep -q '"errors": 0' "$mut_json"; then
      echo "mutable smoke: loadgen saw errors during ingest:" >&2
      cat "$mut_json" >&2
      mut_ok=0
    fi
    if [ "$mut_ok" = "1" ]; then
      mut_metrics="$(http_get "$mut_port" /metrics)"
      ingested="$(printf '%s\n' "$mut_metrics" |
        sed -n 's/^abitmap_engine_ingest_rows \([0-9]*\).*/\1/p' | head -1)"
      if [ -z "$ingested" ] || [ "$ingested" -lt "$mut_inserts" ]; then
        echo "mutable smoke: /metrics ingest counter ($ingested) below" \
          "the $mut_inserts inserts sent" >&2
        mut_ok=0
      fi
    fi
    kill -INT "$mut_pid" 2>/dev/null || true
    mut_status=0
    wait "$mut_pid" || mut_status=$?
    if [ "$mut_status" -ne 0 ]; then
      echo "mutable smoke: ab_serve exited with status $mut_status" >&2
      mut_ok=0
    fi
  fi
  if [ "$mut_ok" != "1" ]; then
    if [ "${AB_CHECK_MUTABLE:-advisory}" = "strict" ]; then
      echo "error: AB_CHECK_MUTABLE=strict and the smoke failed" >&2
      exit 1
    fi
    echo "mutable smoke: ADVISORY failure (AB_CHECK_MUTABLE=strict to enforce)" >&2
  else
    echo "mutable smoke: $mut_inserts inserts + loadgen + clean shutdown" \
      "ok on port $mut_port"
  fi
fi

if [ "${AB_CHECK_OBS_SERVE:-advisory}" != "0" ]; then
  echo "== observability smoke (tracing + slow log + time series) =="
  # The request-tracing surface end to end on a live server: stage
  # timings echoed to the loadgen, every request retained in /slow.json
  # (threshold 0), ticker samples accumulating in /timeseries.json, and
  # the ingest gauges moving on /metrics after an insert.
  obs_ok=1
  obs_log="$build_dir/ab_serve_obs_smoke.log"
  obs_rows=20000
  "$build_dir/tools/ab_serve" --port=0 --rows="$obs_rows" --workers=2 \
    --slow-ms=0 --telemetry-ms=200 >/dev/null 2>"$obs_log" &
  obs_pid=$!
  obs_port=""
  for _ in $(seq 1 100); do
    obs_port="$(sed -n \
      's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$obs_log" | head -1)"
    [ -n "$obs_port" ] && break
    if ! kill -0 "$obs_pid" 2>/dev/null; then
      echo "obs smoke: ab_serve exited early; log:" >&2
      cat "$obs_log" >&2
      obs_ok=0
      break
    fi
    sleep 0.1
  done
  if [ "$obs_ok" = "1" ] && [ -z "$obs_port" ]; then
    echo "obs smoke: ab_serve never announced a port" >&2
    kill "$obs_pid" 2>/dev/null || true
    obs_ok=0
  fi
  if [ "$obs_ok" = "1" ]; then
    obs_json="$build_dir/ab_loadgen_obs_smoke.json"
    if ! "$build_dir/tools/ab_loadgen" --port="$obs_port" \
      --rows="$obs_rows" --connections=2 --duration=1 --timings --json \
      >"$obs_json" 2>>"$obs_log"; then
      echo "obs smoke: ab_loadgen failed; see $obs_log" >&2
      obs_ok=0
    elif ! grep -q '"stage_us"' "$obs_json"; then
      echo "obs smoke: loadgen JSON lacks stage_us aggregates:" >&2
      cat "$obs_json" >&2
      obs_ok=0
    fi
  fi
  if [ "$obs_ok" = "1" ]; then
    obs_slow="$(http_get "$obs_port" /slow.json)"
    case "$obs_slow" in
      *'"trace_id"'*) ;;
      *'"enabled": false'*)
        echo "obs smoke: /slow.json disabled (stats-off tool build?)" ;;
      *)
        echo "obs smoke: /slow.json retained no records at threshold 0:" >&2
        printf '%s\n' "$obs_slow" | head -5 >&2
        obs_ok=0
        ;;
    esac
  fi
  if [ "$obs_ok" = "1" ]; then
    # One extra ticker period so at least two samples have landed.
    sleep 0.5
    obs_ts_samples="$(http_get "$obs_port" /timeseries.json |
      grep -o '"mono_ns"' | wc -l)"
    if [ "$obs_ts_samples" -lt 2 ]; then
      echo "obs smoke: /timeseries.json has $obs_ts_samples samples," \
        "expected >= 2 at a 200 ms cadence" >&2
      obs_ok=0
    fi
  fi
  if [ "$obs_ok" = "1" ]; then
    obs_resp="$(http_post "$obs_port" /insert '{"values":[45.5,17,3.2]}' ||
      true)"
    case "$obs_resp" in
      *'"status":"ok"'*) ;;
      *)
        echo "obs smoke: insert rejected; response:" >&2
        echo "$obs_resp" >&2
        obs_ok=0
        ;;
    esac
    if [ "$obs_ok" = "1" ]; then
      obs_live="$(http_get "$obs_port" /metrics |
        sed -n 's/^abitmap_engine_delta_live \([0-9]*\).*/\1/p' | head -1)"
      if [ -z "$obs_live" ] || [ "$obs_live" -lt 1 ]; then
        echo "obs smoke: abitmap_engine_delta_live gauge is '$obs_live'" \
          "after an insert" >&2
        obs_ok=0
      fi
    fi
  fi
  if kill -0 "$obs_pid" 2>/dev/null; then
    kill -INT "$obs_pid" 2>/dev/null || true
    obs_status=0
    wait "$obs_pid" || obs_status=$?
    if [ "$obs_status" -ne 0 ]; then
      echo "obs smoke: ab_serve exited with status $obs_status" >&2
      obs_ok=0
    fi
  fi
  if [ "$obs_ok" != "1" ]; then
    if [ "${AB_CHECK_OBS_SERVE:-advisory}" = "strict" ]; then
      echo "error: AB_CHECK_OBS_SERVE=strict and the smoke failed" >&2
      exit 1
    fi
    echo "obs smoke: ADVISORY failure (AB_CHECK_OBS_SERVE=strict to enforce)" >&2
  else
    echo "obs smoke: timings + slow log ($obs_ts_samples ts samples) +" \
      "ingest gauges ok on port $obs_port"
  fi
fi

echo "== batch-eval bench (smoke) =="
# Scale the datasets down and take a single rep: this validates that the
# three pipelines run end to end, not their timings.
ABITMAP_BENCH_SCALE=100 "$build_dir/bench/bench_batch_eval" \
  --benchmark_min_time=0.01 --benchmark_repetitions=1 \
  --benchmark_format=json >"$build_dir/bench_batch_eval_smoke.json"
echo "wrote $build_dir/bench_batch_eval_smoke.json"

echo "OK"
