#!/usr/bin/env bash
# Tier-1 gate: configure + build RelWithDebInfo, run the tier-1 test
# suite, and smoke the batched-evaluation benchmark. Intended for CI and
# as the pre-commit check — a clean exit means the tree is shippable.
#
# Usage: tools/check.sh [build-dir]   (default: build/check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build/check}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure (RelWithDebInfo) =="
cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$jobs"

echo "== batch-eval bench (smoke) =="
# Scale the datasets down and take a single rep: this validates that the
# three pipelines run end to end, not their timings.
ABITMAP_BENCH_SCALE=100 "$build_dir/bench/bench_batch_eval" \
  --benchmark_min_time=0.01 --benchmark_repetitions=1 \
  --benchmark_format=json >"$build_dir/bench_batch_eval_smoke.json"
echo "wrote $build_dir/bench_batch_eval_smoke.json"

echo "OK"
