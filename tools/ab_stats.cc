// ab_stats: the observability layer's CLI front end. Runs a
// representative AB workload — index build plus a batch of sampled
// rectangular queries — and dumps the process-wide stats snapshot in the
// requested format, optionally with one trace line per query.
//
//   ./ab_stats                               # text summary
//   ./ab_stats --format=json                 # machine-readable snapshot
//   ./ab_stats --format=prom                 # Prometheus exposition text
//   ./ab_stats --trace                       # per-query trace JSON lines
//   ./ab_stats --workload=hep --queries=200 --threads=4
//   ./ab_stats --serve=9100                  # serve /metrics until SIGINT
//   ./ab_stats --serve=0 --watch=2           # ephemeral port, live workload
//
// --serve=PORT runs the workload, then keeps the process alive serving
// /metrics, /stats.json, /healthz, and /traces.json on 127.0.0.1:PORT
// (PORT=0 picks an ephemeral port, announced on stderr) until SIGINT or
// SIGTERM. --watch=SECS re-runs the query workload every SECS seconds and
// prints a text snapshot, so the served numbers keep moving.
//
// In a -DAB_DISABLE_STATS=ON build the tool still runs (the snapshot API
// is link-compatible) and reports an all-zero snapshot with
// "enabled": false; the endpoints serve the disabled payloads.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ab_index.h"
#include "data/generators.h"
#include "data/query_gen.h"
#include "obs/export.h"
#include "obs/http.h"
#include "obs/stats.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

using namespace abitmap;

namespace {

/// Matches --name=value; points *value at the value on success.
bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=uniform|hep|landsat] [--scale=N]\n"
      "          [--queries=N] [--rows=N] [--alpha=A]\n"
      "          [--level=dataset|attribute|column] [--threads=N]\n"
      "          [--format=text|json|prom] [--trace]\n"
      "          [--serve=PORT] [--watch=SECS]\n",
      prog);
}

/// Set by the SIGINT/SIGTERM handler; the serve loop polls it.
std::atomic<bool> g_stop{false};

void StopHandler(int /*sig*/) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "uniform";
  std::string format = "text";
  std::string level = "attribute";
  uint64_t scale = 10;
  int num_queries = 50;
  uint64_t rows_queried = 2000;
  double alpha = 8.0;
  int threads = 1;
  bool trace_lines = false;
  bool serve = false;
  int serve_port = 0;
  int watch_secs = 0;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--workload", &v)) {
      workload = v;
    } else if (FlagValue(argv[i], "--format", &v)) {
      format = v;
    } else if (FlagValue(argv[i], "--level", &v)) {
      level = v;
    } else if (FlagValue(argv[i], "--scale", &v)) {
      scale = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--queries", &v)) {
      num_queries = std::atoi(v);
    } else if (FlagValue(argv[i], "--rows", &v)) {
      rows_queried = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--alpha", &v)) {
      alpha = std::atof(v);
    } else if (FlagValue(argv[i], "--threads", &v)) {
      threads = std::atoi(v);
    } else if (FlagValue(argv[i], "--serve", &v)) {
      serve = true;
      serve_port = std::atoi(v);
    } else if (FlagValue(argv[i], "--watch", &v)) {
      watch_secs = std::atoi(v);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_lines = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (scale == 0) scale = 1;
  if (serve_port < 0 || serve_port > 65535) {
    std::fprintf(stderr, "ab_stats: --serve port out of range\n");
    return 2;
  }

  if (!obs::kStatsEnabled) {
    std::fprintf(stderr,
                 "ab_stats: built with AB_DISABLE_STATS; the snapshot "
                 "below is all zeros\n");
  }

  bitmap::BinnedDataset dataset =
      workload == "hep"       ? data::MakeHepDataset(44, scale)
      : workload == "landsat" ? data::MakeLandsatDataset(43, scale)
                              : data::MakeUniformDataset(42, scale);

  ab::AbConfig config;
  config.alpha = alpha;
  config.level = level == "dataset"  ? ab::Level::kPerDataset
                 : level == "column" ? ab::Level::kPerColumn
                                     : ab::Level::kPerAttribute;

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  // Start serving before the workload so a scraper pointed at the port
  // sees the build counters move live.
  obs::HttpServer server(
      obs::HttpServer::Options{static_cast<uint16_t>(serve_port)});
  if (serve) {
    obs::RegisterObsEndpoints(&server);
    util::Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "ab_stats: %s\n", status.message().c_str());
      return 1;
    }
    // One parseable line so scripts (tools/check.sh) can find the port.
    std::fprintf(stderr, "ab_stats: listening on http://127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));
  }
  if (serve || watch_secs > 0) {
    std::signal(SIGINT, StopHandler);
    std::signal(SIGTERM, StopHandler);
  }

  ab::AbIndex index = ab::AbIndex::BuildParallel(dataset, config, pool.get());

  data::QueryGenParams qp;
  qp.num_queries = num_queries;
  qp.rows_queried = std::min<uint64_t>(rows_queried, dataset.num_rows());
  std::vector<bitmap::BitmapQuery> queries =
      data::GenerateQueries(dataset, qp);

  auto run_queries = [&]() {
    for (const bitmap::BitmapQuery& q : queries) {
      obs::QueryTrace trace;
      std::vector<bool> bits =
          pool != nullptr ? index.EvaluateParallel(q, pool.get(), &trace)
                          : index.EvaluateBatched(q, &trace);
      (void)bits;
      if (trace_lines) std::printf("%s\n", trace.ToJson().c_str());
    }
  };
  run_queries();

  auto print_snapshot = [&]() {
    obs::StatsSnapshot snapshot = obs::SnapshotStats();
    std::string rendered = format == "json"   ? obs::ToJson(snapshot)
                           : format == "prom" ? obs::ToPrometheus(snapshot)
                                              : obs::ToText(snapshot);
    std::fputs(rendered.c_str(), stdout);
    if (!rendered.empty() && rendered.back() != '\n') {
      std::fputc('\n', stdout);
    }
    std::fflush(stdout);
  };
  print_snapshot();

  if (serve || watch_secs > 0) {
    // Periodic mode: re-run the query workload each tick so the served
    // and printed numbers keep moving; with --serve alone, just stay
    // alive for the scraper. Sleep in 100 ms slices so SIGINT is honoured
    // promptly.
    auto tick = std::chrono::seconds(watch_secs > 0 ? watch_secs : 1);
    while (!g_stop.load() && (serve ? server.running() : true)) {
      auto deadline = std::chrono::steady_clock::now() + tick;
      while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (g_stop.load()) break;
      if (watch_secs > 0) {
        run_queries();
        // Each tick also lands one sample in the /timeseries.json ring,
        // so a scraper of the --serve port gets history, not just the
        // latest snapshot.
        obs::TsSample sample = obs::TsSampleFromStats(obs::SnapshotStats());
        sample.mono_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        sample.wall_ms = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        obs::RecordTimeSeriesSample(sample);
        std::printf("--- watch tick ---\n");
        print_snapshot();
      }
    }
    if (serve) server.Stop();
  }
  return 0;
}
