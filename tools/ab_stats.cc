// ab_stats: the observability layer's CLI front end. Runs a
// representative AB workload — index build plus a batch of sampled
// rectangular queries — and dumps the process-wide stats snapshot in the
// requested format, optionally with one trace line per query.
//
//   ./ab_stats                               # text summary
//   ./ab_stats --format=json                 # machine-readable snapshot
//   ./ab_stats --format=prom                 # Prometheus exposition text
//   ./ab_stats --trace                       # per-query trace JSON lines
//   ./ab_stats --workload=hep --queries=200 --threads=4
//
// In a -DAB_DISABLE_STATS=ON build the tool still runs (the snapshot API
// is link-compatible) and reports an all-zero snapshot with
// "enabled": false.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/ab_index.h"
#include "data/generators.h"
#include "data/query_gen.h"
#include "obs/export.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

using namespace abitmap;

namespace {

/// Matches --name=value; points *value at the value on success.
bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=uniform|hep|landsat] [--scale=N]\n"
      "          [--queries=N] [--rows=N] [--alpha=A]\n"
      "          [--level=dataset|attribute|column] [--threads=N]\n"
      "          [--format=text|json|prom] [--trace]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "uniform";
  std::string format = "text";
  std::string level = "attribute";
  uint64_t scale = 10;
  int num_queries = 50;
  uint64_t rows_queried = 2000;
  double alpha = 8.0;
  int threads = 1;
  bool trace_lines = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--workload", &v)) {
      workload = v;
    } else if (FlagValue(argv[i], "--format", &v)) {
      format = v;
    } else if (FlagValue(argv[i], "--level", &v)) {
      level = v;
    } else if (FlagValue(argv[i], "--scale", &v)) {
      scale = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--queries", &v)) {
      num_queries = std::atoi(v);
    } else if (FlagValue(argv[i], "--rows", &v)) {
      rows_queried = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--alpha", &v)) {
      alpha = std::atof(v);
    } else if (FlagValue(argv[i], "--threads", &v)) {
      threads = std::atoi(v);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_lines = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (scale == 0) scale = 1;

  if (!obs::kStatsEnabled) {
    std::fprintf(stderr,
                 "ab_stats: built with AB_DISABLE_STATS; the snapshot "
                 "below is all zeros\n");
  }

  bitmap::BinnedDataset dataset =
      workload == "hep"       ? data::MakeHepDataset(44, scale)
      : workload == "landsat" ? data::MakeLandsatDataset(43, scale)
                              : data::MakeUniformDataset(42, scale);

  ab::AbConfig config;
  config.alpha = alpha;
  config.level = level == "dataset"  ? ab::Level::kPerDataset
                 : level == "column" ? ab::Level::kPerColumn
                                     : ab::Level::kPerAttribute;

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  ab::AbIndex index = ab::AbIndex::BuildParallel(dataset, config, pool.get());

  data::QueryGenParams qp;
  qp.num_queries = num_queries;
  qp.rows_queried = std::min<uint64_t>(rows_queried, dataset.num_rows());
  std::vector<bitmap::BitmapQuery> queries =
      data::GenerateQueries(dataset, qp);

  for (const bitmap::BitmapQuery& q : queries) {
    obs::QueryTrace trace;
    std::vector<bool> bits =
        pool != nullptr ? index.EvaluateParallel(q, pool.get(), &trace)
                        : index.EvaluateBatched(q, &trace);
    (void)bits;
    if (trace_lines) std::printf("%s\n", trace.ToJson().c_str());
  }

  obs::StatsSnapshot snapshot = obs::SnapshotStats();
  std::string rendered = format == "json"   ? obs::ToJson(snapshot)
                         : format == "prom" ? obs::ToPrometheus(snapshot)
                                            : obs::ToText(snapshot);
  std::fputs(rendered.c_str(), stdout);
  if (!rendered.empty() && rendered.back() != '\n') std::fputc('\n', stdout);
  return 0;
}
