// ab_loadgen: the tail-latency load harness for ab_serve. Opens N binary
// protocol connections against a running server and drives a zipf-skewed
// stream of query templates, closed- or open-loop, reporting throughput
// and exact latency percentiles (p50/p90/p99/p999 over every sample).
//
//   ./ab_loadgen --port=9200                         # closed loop, 4 conns
//   ./ab_loadgen --port=9200 --connections=16 --duration=10
//   ./ab_loadgen --port=9200 --qps=5000              # open loop at 5k qps
//   ./ab_loadgen --port=9200 --theta=0               # uniform (no skew)
//   ./ab_loadgen --port=9200 --json                  # machine-readable
//
// The template pool is regenerated deterministically from --rows and
// --seed, so it matches the table a `./ab_serve --rows=R --seed=S` server
// is serving — keep the two invocations' values in sync (row subsets
// reference concrete row ids).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/loadgen.h"
#include "serve/workload.h"

using namespace abitmap;

namespace {

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --port=N [--connections=N] [--duration=SECS]\n"
      "          [--templates=N] [--theta=F] [--qps=N] [--deadline-ms=N]\n"
      "          [--rows=N] [--row-fraction=F] [--seed=N] [--timings]\n"
      "          [--json]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  serve::LoadgenOptions options;
  serve::TemplateOptions template_options;
  uint64_t rows = 200000;
  int port = 0;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--port", &v)) {
      port = std::atoi(v);
    } else if (FlagValue(argv[i], "--connections", &v)) {
      options.connections = std::atoi(v);
    } else if (FlagValue(argv[i], "--duration", &v)) {
      options.duration_s = std::atof(v);
    } else if (FlagValue(argv[i], "--templates", &v)) {
      template_options.num_templates = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--theta", &v)) {
      options.zipf_theta = std::atof(v);
    } else if (FlagValue(argv[i], "--qps", &v)) {
      options.open_loop_qps = std::atof(v);
    } else if (FlagValue(argv[i], "--deadline-ms", &v)) {
      options.deadline_ms = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (FlagValue(argv[i], "--rows", &v)) {
      rows = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--row-fraction", &v)) {
      template_options.row_fraction = std::atof(v);
    } else if (FlagValue(argv[i], "--seed", &v)) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--timings") == 0) {
      options.want_timings = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "ab_loadgen: --port is required\n");
    Usage(argv[0]);
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  if (template_options.num_templates == 0) template_options.num_templates = 1;

  std::vector<serve::QueryRequest> templates =
      serve::MakeQueryTemplates(rows, template_options);
  util::StatusOr<serve::LoadgenResult> run =
      serve::RunLoadgen(templates, options);
  if (!run.ok()) {
    std::fprintf(stderr, "ab_loadgen: %s\n", run.status().message().c_str());
    return 1;
  }
  const serve::LoadgenResult& r = run.value();
  const serve::StageBreakdown& st = r.stages;
  if (json) {
    std::printf(
        "{\"qps\": %.1f, \"requests\": %llu, \"ok\": %llu, "
        "\"rejected\": %llu, \"errors\": %llu, \"duration_s\": %.3f, "
        "\"mean_us\": %.1f, \"p50_us\": %.1f, \"p90_us\": %.1f, "
        "\"p99_us\": %.1f, \"p999_us\": %.1f, \"max_us\": %.1f",
        r.qps, static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.errors), r.duration_s, r.mean_us,
        r.p50_us, r.p90_us, r.p99_us, r.p999_us, r.max_us);
    if (st.samples > 0) {
      std::printf(
          ", \"stage_us\": {\"samples\": %llu, "
          "\"decode\": {\"mean\": %.1f, \"p99\": %.1f}, "
          "\"validate\": {\"mean\": %.1f, \"p99\": %.1f}, "
          "\"queue\": {\"mean\": %.1f, \"p99\": %.1f}, "
          "\"batch\": {\"mean\": %.1f, \"p99\": %.1f}, "
          "\"engine\": {\"mean\": %.1f, \"p99\": %.1f}, "
          "\"verify\": {\"mean\": %.1f, \"p99\": %.1f}, "
          "\"total\": {\"mean\": %.1f, \"p99\": %.1f}}",
          static_cast<unsigned long long>(st.samples), st.decode.mean_us,
          st.decode.p99_us, st.validate.mean_us, st.validate.p99_us,
          st.queue.mean_us, st.queue.p99_us, st.batch.mean_us, st.batch.p99_us,
          st.engine.mean_us, st.engine.p99_us, st.verify.mean_us,
          st.verify.p99_us, st.total.mean_us, st.total.p99_us);
    }
    std::printf("}\n");
  } else {
    std::printf("qps=%.1f requests=%llu ok=%llu rejected=%llu errors=%llu "
                "duration=%.2fs\n",
                r.qps, static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.errors), r.duration_s);
    std::printf("latency_us: mean=%.1f p50=%.1f p90=%.1f p99=%.1f "
                "p999=%.1f max=%.1f\n",
                r.mean_us, r.p50_us, r.p90_us, r.p99_us, r.p999_us, r.max_us);
    if (st.samples > 0) {
      std::printf(
          "stage_us (mean/p99, %llu samples): decode=%.1f/%.1f "
          "validate=%.1f/%.1f queue=%.1f/%.1f batch=%.1f/%.1f "
          "engine=%.1f/%.1f verify=%.1f/%.1f total=%.1f/%.1f\n",
          static_cast<unsigned long long>(st.samples), st.decode.mean_us,
          st.decode.p99_us, st.validate.mean_us, st.validate.p99_us,
          st.queue.mean_us, st.queue.p99_us, st.batch.mean_us, st.batch.p99_us,
          st.engine.mean_us, st.engine.p99_us, st.verify.mean_us,
          st.verify.p99_us, st.total.mean_us, st.total.p99_us);
    }
  }
  // A run where nothing succeeded is a failure for scripts even though
  // the harness itself ran.
  return r.ok > 0 ? 0 : 1;
}
