// ab_serve: the concurrent query server's CLI front end. Builds a
// HybridEngine over the deterministic seed table (serve/workload.h) and
// serves it on 127.0.0.1 until SIGINT/SIGTERM, speaking both protocols of
// serve/protocol.h on one port:
//
//   ./ab_serve                          # ephemeral port, announced on stderr
//   ./ab_serve --port=9200 --rows=200000
//   ./ab_serve --no-batching            # ablation: dispatch queries alone
//   ./ab_serve --max-batch=64 --max-delay-us=200 --queue-cap=1024
//
// Try it with curl (JSON over HTTP):
//   curl -s http://127.0.0.1:PORT/healthz
//   curl -s -d '{"predicates":[{"attr":0,"lo":20,"hi":60}]}' http://127.0.0.1:PORT/query
//   curl -s -d '{"values":[45.0,17,3.2]}' http://127.0.0.1:PORT/insert
//   curl -s http://127.0.0.1:PORT/metrics | grep ab_serve
//
// or drive it hard with ./ab_loadgen --port=PORT (binary protocol).

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "engine/hybrid_engine.h"
#include "serve/server.h"
#include "serve/workload.h"

using namespace abitmap;

namespace {

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--rows=N] [--seed=N] [--workers=N]\n"
      "          [--engine-threads=N] [--max-batch=N] [--max-delay-us=N]\n"
      "          [--queue-cap=N] [--no-batching] [--deadline-ms=N]\n"
      "          [--max-connections=N] [--slow-ms=N] [--telemetry-ms=N]\n"
      "\n"
      "  --slow-ms=N       slow-query log threshold (/slow.json); 0 retains\n"
      "                    every request (default 100)\n"
      "  --telemetry-ms=N  /timeseries.json sample cadence; 0 disables\n"
      "                    (default 1000)\n",
      prog);
}

std::atomic<bool> g_stop{false};

void StopHandler(int /*sig*/) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  uint64_t rows = 200000;
  uint64_t seed = 42;
  int engine_threads = 0;
  serve::QueryServer::Options options;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--port", &v)) {
      port = std::atoi(v);
    } else if (FlagValue(argv[i], "--rows", &v)) {
      rows = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--seed", &v)) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--workers", &v)) {
      options.num_workers = std::atoi(v);
    } else if (FlagValue(argv[i], "--engine-threads", &v)) {
      engine_threads = std::atoi(v);
    } else if (FlagValue(argv[i], "--max-batch", &v)) {
      options.service.queue.max_batch = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--max-delay-us", &v)) {
      options.service.queue.max_delay_us =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (FlagValue(argv[i], "--queue-cap", &v)) {
      options.service.queue.capacity = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--deadline-ms", &v)) {
      options.service.default_deadline_ms =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (FlagValue(argv[i], "--max-connections", &v)) {
      options.max_connections = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(argv[i], "--slow-ms", &v)) {
      options.slow_threshold_ns =
          std::strtoull(v, nullptr, 10) * 1000ull * 1000ull;
    } else if (FlagValue(argv[i], "--telemetry-ms", &v)) {
      options.telemetry_interval_ms =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-batching") == 0) {
      options.service.batching = false;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "ab_serve: --port out of range\n");
    return 2;
  }
  if (rows == 0) rows = 1000;
  options.port = static_cast<uint16_t>(port);

  std::fprintf(stderr, "ab_serve: building engine over %llu rows...\n",
               static_cast<unsigned long long>(rows));
  engine::HybridEngine::Options engine_options;
  engine_options.binning.bins = 16;
  engine_options.ab.alpha = 16;
  engine_options.ab.level = ab::Level::kPerAttribute;
  engine_options.num_threads = engine_threads;
  engine::HybridEngine engine = engine::HybridEngine::Build(
      serve::MakeSeedTable(rows, seed), engine_options);

  serve::QueryServer server(&engine, options);
  util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "ab_serve: %s\n", status.message().c_str());
    return 1;
  }
  // One parseable line so scripts (tools/check.sh, the bench harness) can
  // find the port; same shape as ab_stats.
  std::fprintf(stderr, "ab_serve: listening on http://127.0.0.1:%u\n",
               static_cast<unsigned>(server.port()));
  std::fprintf(stderr,
               "ab_serve: batching=%s max_batch=%zu max_delay_us=%u "
               "queue_cap=%zu workers=%d\n",
               options.service.batching ? "on" : "off",
               options.service.queue.max_batch,
               options.service.queue.max_delay_us,
               options.service.queue.capacity, options.num_workers);

  std::signal(SIGINT, StopHandler);
  std::signal(SIGTERM, StopHandler);
  while (!g_stop.load() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::fprintf(stderr, "ab_serve: stopped\n");
  return 0;
}
