// Data-warehouse scenario from the paper's introduction: a fact table
// physically ordered by date. "The total sales of every Monday for the
// last 3 months" touches exactly ~13 specific days — with day-level row
// ranges, the Approximate Bitmap evaluates the product/region constraints
// over only those rows, in time proportional to the rows asked for.
//
//   ./data_warehouse

#include <cstdio>
#include <random>
#include <vector>

#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "util/stopwatch.h"
#include "wah/wah_query.h"

using namespace abitmap;

int main() {
  // Five years of sales, 2,000 transactions per day, ordered by date.
  constexpr int kDays = 1825;
  constexpr int kPerDay = 2000;
  constexpr uint64_t kRows = uint64_t{kDays} * kPerDay;
  constexpr uint32_t kProducts = 50;
  constexpr uint32_t kRegions = 12;

  std::mt19937_64 rng(3);
  bitmap::BinnedDataset sales;
  sales.name = "sales";
  sales.attributes = {{"product", kProducts}, {"region", kRegions}};
  std::vector<uint32_t> product(kRows), region(kRows);
  for (uint64_t i = 0; i < kRows; ++i) {
    product[i] = rng() % kProducts;
    region[i] = rng() % kRegions;
  }
  sales.values = {product, region};

  bitmap::BitmapTable table = bitmap::BitmapTable::Build(sales);
  wah::WahIndex wah_index = wah::WahIndex::Build(table);
  ab::AbConfig config;
  config.level = ab::Level::kPerAttribute;
  config.alpha = 16;
  ab::AbIndex ab_index = ab::AbIndex::Build(sales, config);

  // Query: transactions of products 5-8 in regions 3-6, during the closing
  // hour (the last 1/24th of the day's transactions) of every Monday of
  // the last 13 weeks. Day d's rows are [d*kPerDay, (d+1)*kPerDay); the
  // physical date order makes each day slice a contiguous row range.
  bitmap::BitmapQuery query;
  query.ranges = {{/*attr=*/0, 5, 8}, {/*attr=*/1, 3, 6}};
  constexpr int kClosingHour = kPerDay / 24;
  int last_day = kDays - 1;
  for (int week = 12; week >= 0; --week) {
    int monday = last_day - week * 7;  // day index of that Monday
    uint64_t day_end = static_cast<uint64_t>(monday + 1) * kPerDay;
    for (int r = kClosingHour; r > 0; --r) query.rows.push_back(day_end - r);
  }
  std::printf("query: product in [5,8] AND region in [3,6], closing hour of "
              "13 Mondays\n       (%zu rows of %llu total)\n",
              query.rows.size(), static_cast<unsigned long long>(kRows));

  util::Stopwatch ab_timer;
  std::vector<bool> approx = ab_index.Evaluate(query);
  double ab_ms = ab_timer.ElapsedMillis();

  util::Stopwatch wah_timer;
  std::vector<bool> exact = wah_index.Evaluate(query);
  double wah_ms = wah_timer.ElapsedMillis();

  uint64_t exact_count = 0, approx_count = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    exact_count += exact[i];
    approx_count += approx[i];
  }
  std::printf("matching transactions: exact %llu, AB candidates %llu\n",
              static_cast<unsigned long long>(exact_count),
              static_cast<unsigned long long>(approx_count));
  std::printf("time: AB %.3f ms, WAH %.3f ms\n", ab_ms, wah_ms);

  // Aggregate with exact semantics: the candidate rows are few, so the
  // second-step pruning against the fact table is cheap.
  uint64_t sum = 0;
  for (size_t i = 0; i < approx.size(); ++i) {
    if (!approx[i]) continue;
    uint64_t row = query.rows[i];
    if (product[row] >= 5 && product[row] <= 8 && region[row] >= 3 &&
        region[row] <= 6) {
      sum += 1;  // stand-in for summing a measure column
    }
  }
  std::printf("aggregated (pruned) count: %llu == exact %llu\n",
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(exact_count));
  return 0;
}
