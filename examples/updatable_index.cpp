// Updatable-index scenario: the paper assumes read-only scientific data
// ("since most of the large scientific data sets are read-only..."); this
// example shows the counting-filter extension handling a mutable relation
// — an online order book where rows are revised in place — with deletions
// that a plain Approximate Bitmap cannot express.
//
//   ./updatable_index

#include <cstdio>
#include <random>
#include <vector>

#include "core/ab_theory.h"
#include "core/counting_bitmap.h"
#include "hash/hash_family.h"

using namespace abitmap;

namespace {

// Cell key for (row, status-bin), mirroring CellMapper::RowAndColumn.
uint64_t Key(uint64_t row, uint32_t bin) { return (row << 4) | bin; }

}  // namespace

int main() {
  constexpr uint64_t kOrders = 100000;
  constexpr uint32_t kStatuses = 6;  // placed, paid, packed, shipped, ...

  std::mt19937_64 rng(21);
  std::vector<uint32_t> status(kOrders);

  // Size the counting filter like a plain AB (n counters play the role of
  // n bits), 4 bits per counter.
  ab::AbParams params = ab::AbParams::ForAlpha(8.0, 0, kOrders);
  params.k = ab::OptimalK(params.alpha);
  ab::CountingApproximateBitmap filter(params,
                                       hash::MakeIndependentFamily());
  std::printf("counting filter: %llu counters (k=%d), %llu bytes\n",
              static_cast<unsigned long long>(filter.num_counters()),
              filter.k(),
              static_cast<unsigned long long>(filter.SizeInBytes()));

  // Initial load: every order starts in status 0.
  for (uint64_t order = 0; order < kOrders; ++order) {
    status[order] = 0;
    filter.Insert(Key(order, 0), hash::CellRef{order, 0});
  }

  // Orders progress through statuses: each transition removes the old
  // (order, status) cell and inserts the new one — the operation the
  // plain AB cannot perform without a rebuild.
  uint64_t transitions = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t order = 0; order < kOrders; ++order) {
      if (rng() % 2 == 0 && status[order] + 1 < kStatuses) {
        uint32_t old_bin = status[order];
        uint32_t new_bin = old_bin + 1;
        filter.Remove(Key(order, old_bin), hash::CellRef{order, old_bin});
        filter.Insert(Key(order, new_bin), hash::CellRef{order, new_bin});
        status[order] = new_bin;
        ++transitions;
      }
    }
  }
  std::printf("applied %llu status transitions (live cells: %llu)\n",
              static_cast<unsigned long long>(transitions),
              static_cast<unsigned long long>(filter.live()));

  // Query: "might order X currently be in status S?" — checked against
  // the ground truth for recall (must be perfect) and precision.
  uint64_t true_hits = 0, true_queries = 0, false_hits = 0, false_queries = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    uint64_t order = rng() % kOrders;
    uint32_t bin = rng() % kStatuses;
    bool actual = status[order] == bin;
    bool reported = filter.Test(Key(order, bin), hash::CellRef{order, bin});
    if (actual) {
      ++true_queries;
      true_hits += reported;
    } else {
      ++false_queries;
      false_hits += reported;
    }
  }
  std::printf("recall: %llu/%llu = %.4f (deletions preserved the no-false-"
              "negative guarantee)\n",
              static_cast<unsigned long long>(true_hits),
              static_cast<unsigned long long>(true_queries),
              static_cast<double>(true_hits) / true_queries);
  std::printf("false positive rate on stale/absent cells: %.4f (theory for "
              "this load: %.4f)\n",
              static_cast<double>(false_hits) / false_queries,
              ab::FalsePositiveRate(params.alpha, params.k));
  std::printf("\nCost of updatability: 4 bits per counter vs 1 bit per AB\n"
              "position — the classic counting-filter trade-off.\n");
  return 0;
}
