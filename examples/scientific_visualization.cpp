// Scientific visualization scenario from the paper's introduction: points
// of a 3-D grid are mapped to a single row id with a space-filling curve
// (Z-order / Morton code) and physically ordered by it. A user asks for a
// small cube of the data space; the cube maps to a modest set of row ids,
// and the Approximate Bitmap answers the attribute constraints over
// exactly those rows in O(c) — while a run-length-compressed bitmap must
// execute the whole-column query first.
//
//   ./scientific_visualization

#include <cstdio>
#include <random>
#include <vector>

#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "data/metrics.h"
#include "util/stopwatch.h"
#include "wah/wah_query.h"

using namespace abitmap;

namespace {

// Interleaves the low 8 bits of x, y, z into a 24-bit Morton code.
uint32_t MortonEncode(uint32_t x, uint32_t y, uint32_t z) {
  auto spread = [](uint32_t v) {
    uint32_t r = 0;
    for (int bit = 0; bit < 8; ++bit) {
      r |= ((v >> bit) & 1u) << (3 * bit);
    }
    return r;
  };
  return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

}  // namespace

int main() {
  // A 128x128x128 grid: ~2.1M cells, each with two physical quantities
  // (temperature and pressure), binned into 16 levels each. Rows are
  // ordered by Morton code so spatially close cells get close row ids.
  constexpr uint32_t kSide = 128;
  constexpr uint64_t kCells = uint64_t{kSide} * kSide * kSide;

  std::mt19937_64 rng(7);
  std::vector<uint32_t> temperature(kCells), pressure(kCells);
  for (uint32_t x = 0; x < kSide; ++x) {
    for (uint32_t y = 0; y < kSide; ++y) {
      for (uint32_t z = 0; z < kSide; ++z) {
        uint64_t row = MortonEncode(x, y, z);
        // A smooth field plus noise: hot near the center.
        double c = kSide / 2.0;
        double cx = x - c, cy = y - c, cz = z - c;
        double r2 = (cx * cx + cy * cy + cz * cz) / (c * c * 3);
        uint32_t temp_bin = static_cast<uint32_t>(
            std::min(15.0, (1.0 - r2) * 12 + (rng() % 4)));
        temperature[row] = temp_bin;
        pressure[row] = rng() % 16;
      }
    }
  }

  bitmap::BinnedDataset dataset;
  dataset.name = "grid";
  dataset.attributes = {{"temperature", 16}, {"pressure", 16}};
  dataset.values = {temperature, pressure};

  bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);
  wah::WahIndex wah_index = wah::WahIndex::Build(table);
  ab::AbConfig config;
  config.level = ab::Level::kPerAttribute;
  // alpha=16 keeps precision near 1; the AB lands ~1.5x the WAH size here,
  // within the paper's "less than or comparable" budget (cf. HEP, alpha=8).
  // k=6 instead of the FP-optimal 11: this query returns many positives,
  // and every positive cell costs all k probes — 6 hashes trade a fraction
  // of a percent of precision for nearly half the probe work.
  config.alpha = 16;
  config.k = 6;
  ab::AbIndex ab_index = ab::AbIndex::Build(dataset, config);

  // Visualization query: "cells in the sub-cube [64,79]^3 that are warm
  // (temperature bins 12-15) at low pressure (bins 0-3)". An axis-aligned
  // power-of-two cube is one contiguous Morton range: 16^3 = 4,096 rows
  // out of 2.1M.
  uint64_t lo = MortonEncode(64, 64, 64);
  uint64_t hi = lo + 16 * 16 * 16 - 1;
  bitmap::BitmapQuery query;
  query.ranges = {{/*attr=*/0, /*lo_bin=*/12, /*hi_bin=*/15},
                  {/*attr=*/1, /*lo_bin=*/0, /*hi_bin=*/3}};
  query.rows = bitmap::RowRange(lo, hi);

  std::printf("sub-cube [64,79]^3 -> rows [%llu, %llu] (%zu of %llu cells)\n",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi), query.rows.size(),
              static_cast<unsigned long long>(kCells));

  util::Stopwatch ab_timer;
  std::vector<bool> approx = ab_index.Evaluate(query);
  double ab_ms = ab_timer.ElapsedMillis();

  util::Stopwatch wah_timer;
  std::vector<bool> wah_exact = wah_index.Evaluate(query);
  double wah_ms = wah_timer.ElapsedMillis();

  data::QueryAccuracy acc = data::CompareResults(wah_exact, approx);
  std::printf("warm low-pressure cells in cube: exact %llu, AB %llu "
              "(precision %.3f, recall %.3f)\n",
              static_cast<unsigned long long>(acc.exact_ones),
              static_cast<unsigned long long>(acc.approx_ones),
              acc.precision(), acc.recall());
  std::printf("time: AB %.3f ms (O(cells in cube)), WAH %.3f ms "
              "(whole-column bit operations first)\n",
              ab_ms, wah_ms);
  std::printf("sizes: AB %llu B vs WAH %llu B\n",
              static_cast<unsigned long long>(ab_index.SizeInBytes()),
              static_cast<unsigned long long>(wah_index.SizeInBytes()));
  std::printf("\nA visualization front-end can render the AB answer "
              "immediately and\nrefine with exact answers on zoom-in.\n");
  return 0;
}
