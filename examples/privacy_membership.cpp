// Privacy scenario (the paper's contribution 6): "the approximate nature
// of the proposed approach makes it a privacy preserving structure that
// can be used without database access to retrieve query answers."
//
// A hospital publishes an Approximate Bitmap of (patient-row, condition)
// pairs instead of the raw registry. A researcher holding a row id can ask
// "might this patient have condition X?" without the registry ever leaving
// the hospital; the structure is one-way (only hashes are stored), always
// returns all true members, and plausibly denies membership via its
// controlled false positive rate.
//
//   ./privacy_membership

#include <cstdio>
#include <random>
#include <vector>

#include "bitmap/boolean_matrix.h"
#include "core/approximate_bitmap.h"
#include "core/ab_theory.h"
#include "hash/hash_family.h"

using namespace abitmap;

int main() {
  constexpr uint64_t kPatients = 20000;
  constexpr uint32_t kConditions = 64;

  // The private registry: each patient has 1-3 conditions.
  std::mt19937_64 rng(11);
  bitmap::BooleanMatrix registry(kPatients, kConditions);
  uint64_t set_bits = 0;
  for (uint64_t p = 0; p < kPatients; ++p) {
    int conditions = 1 + rng() % 3;
    for (int c = 0; c < conditions; ++c) {
      registry.Set(p, rng() % kConditions);
    }
  }
  set_bits = registry.CountSetBits();

  // Publish with a precision target: the publisher picks the minimum
  // precision they are willing to certify and the sizing policy finds the
  // smallest structure.
  ab::AbParams params = ab::AbParams::ForMinPrecision(0.95, set_bits);
  std::printf("registry: %llu patients, %llu (patient, condition) pairs\n",
              static_cast<unsigned long long>(kPatients),
              static_cast<unsigned long long>(set_bits));
  std::printf("published AB: %llu bytes (alpha=%.2f, k=%d), certified "
              "precision %.4f\n",
              static_cast<unsigned long long>(params.n_bits / 8),
              params.alpha, params.k, params.ExpectedPrecision());

  ab::MatrixFilter published(registry, params, hash::MakeIndependentFamily());

  // The researcher's side: membership tests without registry access.
  uint64_t true_hits = 0, false_hits = 0, true_queries = 0, false_queries = 0;
  for (int trial = 0; trial < 50000; ++trial) {
    uint64_t p = rng() % kPatients;
    uint32_t c = rng() % kConditions;
    bool actual = registry.Get(p, c);
    bool reported = published.Test(p, c);
    if (actual) {
      ++true_queries;
      true_hits += reported;
    } else {
      ++false_queries;
      false_hits += reported;
    }
  }
  std::printf("researcher probes: %llu member queries -> %llu reported "
              "(recall %.4f)\n",
              static_cast<unsigned long long>(true_queries),
              static_cast<unsigned long long>(true_hits),
              static_cast<double>(true_hits) / true_queries);
  std::printf("                   %llu non-member queries -> %llu false "
              "positives (rate %.4f)\n",
              static_cast<unsigned long long>(false_queries),
              static_cast<unsigned long long>(false_hits),
              static_cast<double>(false_hits) / false_queries);
  std::printf("\nEvery true member is found (recall 1.0); a positive answer\n"
              "is deniable with probability %.4f — the privacy knob is the\n"
              "same alpha/k trade-off that controls precision.\n",
              1 - params.ExpectedPrecision());
  return 0;
}
