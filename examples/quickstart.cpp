// Quickstart: build an Approximate Bitmap index over a small relation,
// run a range query over a row subset, and compare against the exact
// answer and the WAH baseline.
//
//   ./quickstart

#include <cstdio>

#include "bitmap/bitmap_table.h"
#include "core/ab_index.h"
#include "data/generators.h"
#include "data/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/simd.h"
#include "wah/wah_query.h"

using namespace abitmap;

int main() {
  // 0. The probe/verify kernels dispatch once per process to the widest
  //    instruction set the CPU offers (override with AB_SIMD_LEVEL=scalar).
  std::printf("simd kernels: %s (detected %s)\n",
              util::simd::SimdLevelName(util::simd::ActiveSimdLevel()),
              util::simd::SimdLevelName(util::simd::DetectedSimdLevel()));
  // 1. A relation with three attributes, already discretized into bins
  //    (use bitmap::Binner for raw continuous data).
  bitmap::BinnedDataset dataset = data::MakeSynthetic(
      "demo", /*rows=*/50000, /*attrs=*/3, /*cardinality=*/20,
      data::Distribution::kUniform, /*seed=*/1);

  // 2. The exact, uncompressed bitmap index (ground truth) and the WAH
  //    baseline.
  bitmap::BitmapTable table = bitmap::BitmapTable::Build(dataset);
  wah::WahIndex wah_index = wah::WahIndex::Build(table);

  // 3. The Approximate Bitmap index: one filter per attribute, size
  //    parameter alpha = 16 bits of filter per set bit, optimal k.
  ab::AbConfig config;
  config.level = ab::Level::kPerAttribute;
  config.alpha = 16;
  ab::AbIndex ab_index = ab::AbIndex::Build(dataset, config);

  std::printf("sizes: uncompressed %llu B, WAH %llu B, AB %llu B\n",
              static_cast<unsigned long long>(table.UncompressedBytes()),
              static_cast<unsigned long long>(wah_index.SizeInBytes()),
              static_cast<unsigned long long>(ab_index.SizeInBytes()));

  // 4. A query: attribute 0 in bins [3, 6] AND attribute 2 in bins [0, 4],
  //    evaluated over rows 10,000..10,999 only.
  bitmap::BitmapQuery query;
  query.ranges = {{/*attr=*/0, /*lo_bin=*/3, /*hi_bin=*/6},
                  {/*attr=*/2, /*lo_bin=*/0, /*hi_bin=*/4}};
  query.rows = bitmap::RowRange(10000, 10999);

  std::vector<bool> exact = table.Evaluate(query);
  std::vector<bool> approx = ab_index.Evaluate(query);

  data::QueryAccuracy acc = data::CompareResults(exact, approx);
  std::printf("query over %zu rows: %llu exact matches, AB returned %llu\n",
              query.rows.size(),
              static_cast<unsigned long long>(acc.exact_ones),
              static_cast<unsigned long long>(acc.approx_ones));
  std::printf("precision %.4f, recall %.4f (always 1: no false negatives)\n",
              acc.precision(), acc.recall());

  // 5. Exact answers when needed: prune the AB's candidates against the
  //    base data — the AB guarantees the candidate set is a superset.
  size_t verified = 0;
  for (size_t i = 0; i < approx.size(); ++i) {
    if (!approx[i]) continue;
    uint64_t row = query.rows[i];
    bool ok = true;
    for (const bitmap::AttributeRange& r : query.ranges) {
      uint32_t v = dataset.values[r.attr][row];
      if (v < r.lo_bin || v > r.hi_bin) {
        ok = false;
        break;
      }
    }
    if (ok) ++verified;
  }
  std::printf("after pruning candidates against base data: %zu == %llu\n",
              verified, static_cast<unsigned long long>(acc.exact_ones));

  // 6. Observability: the same query through the trace-collecting batched
  //    path, plus the process-wide counters the library recorded along
  //    the way (all zeros when built with -DAB_DISABLE_STATS=ON).
  obs::QueryTrace trace;
  (void)ab_index.EvaluateBatched(query, &trace);
  std::printf("query trace: %s\n", trace.ToJson().c_str());
  obs::StatsSnapshot stats = obs::SnapshotStats();
  std::printf(
      "stats: %s — cells_tested=%llu probes_resolved=%llu "
      "short_circuited=%llu queries=%llu\n",
      obs::kStatsEnabled ? "enabled" : "compiled out",
      static_cast<unsigned long long>(
          stats.counter(obs::Counter::kAbCellsTested)),
      static_cast<unsigned long long>(
          stats.counter(obs::Counter::kAbProbesResolved)),
      static_cast<unsigned long long>(
          stats.counter(obs::Counter::kAbProbesShortCircuited)),
      static_cast<unsigned long long>(
          stats.counter(obs::Counter::kIndexQueries)));
  return 0;
}
