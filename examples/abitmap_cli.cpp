// abitmap_cli — command-line front end for the library.
//
//   abitmap_cli gen <rows> <attrs> <out.csv>         synthesize numeric CSV
//   abitmap_cli build <in.csv> <out.abit> [--bins N] [--alpha A]
//               [--level dataset|attribute|column] [--k K]
//   abitmap_cli inspect <index.abit>
//   abitmap_cli query <index.abit> --attr A:lo:hi [--attr ...]
//               [--rows lo:hi]                        bin-space query
//   abitmap_cli demo                                  hybrid-engine tour
//
// `build` persists only the Approximate Bitmap index (that is the point of
// the structure: it answers queries without the data); `query` therefore
// takes bin ids. The `demo` subcommand shows the full value-space path
// through HybridEngine, including AB/WAH routing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/ab_index.h"
#include "engine/hybrid_engine.h"
#include "engine/table.h"
#include "util/file_io.h"
#include "util/math.h"

using namespace abitmap;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  abitmap_cli gen <rows> <attrs> <out.csv>\n"
               "  abitmap_cli build <in.csv> <out.abit> [--bins N] "
               "[--alpha A] [--level dataset|attribute|column] [--k K]\n"
               "  abitmap_cli inspect <index.abit>\n"
               "  abitmap_cli query <index.abit> --attr A:lo:hi ... "
               "[--rows lo:hi]\n"
               "  abitmap_cli demo\n");
  return 2;
}

int CmdGen(int argc, char** argv) {
  if (argc != 3) return Usage();
  uint64_t rows = std::strtoull(argv[0], nullptr, 10);
  uint32_t attrs = static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10));
  if (rows == 0 || attrs == 0) return Usage();
  std::string out = "attr0";
  for (uint32_t a = 1; a < attrs; ++a) out += ",attr" + std::to_string(a);
  out += "\n";
  std::mt19937_64 rng(12345);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint32_t a = 0; a < attrs; ++a) {
      if (a) out += ",";
      out += std::to_string(std::uniform_real_distribution<double>(0, 1000)(rng));
    }
    out += "\n";
  }
  util::Status s = util::WriteFileAtomic(
      argv[2], std::vector<uint8_t>(out.begin(), out.end()));
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %llu rows x %u attrs to %s\n",
              static_cast<unsigned long long>(rows), attrs, argv[2]);
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string csv_path = argv[0];
  std::string index_path = argv[1];
  uint32_t bins = 16;
  ab::AbConfig config;
  config.level = ab::Level::kPerAttribute;
  config.alpha = 16;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--bins") {
      const char* v = next();
      if (!v) return Usage();
      bins = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v) return Usage();
      config.alpha = std::strtod(v, nullptr);
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return Usage();
      config.k = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--level") {
      const char* v = next();
      if (!v) return Usage();
      if (std::strcmp(v, "dataset") == 0) {
        config.level = ab::Level::kPerDataset;
      } else if (std::strcmp(v, "attribute") == 0) {
        config.level = ab::Level::kPerAttribute;
      } else if (std::strcmp(v, "column") == 0) {
        config.level = ab::Level::kPerColumn;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }

  engine::CsvDocument doc;
  util::Status s = engine::ReadCsvFile(csv_path, &doc);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  util::StatusOr<engine::Table> table = engine::Table::FromCsv("cli", doc);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  engine::BinningSpec spec;
  spec.bins = bins;
  engine::Table::Discretized d = table.value().Discretize(spec);
  ab::AbIndex index = ab::AbIndex::Build(d.dataset, config);
  s = index.SaveToFile(index_path);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s index: %llu rows, %u attrs x %u bins, %zu filters, "
              "%llu bytes -> %s\n",
              ab::LevelName(config.level),
              static_cast<unsigned long long>(d.dataset.num_rows()),
              d.dataset.num_attributes(), bins, index.num_filters(),
              static_cast<unsigned long long>(index.SizeInBytes()),
              index_path.c_str());
  return 0;
}

int CmdInspect(int argc, char** argv) {
  if (argc != 1) return Usage();
  util::StatusOr<ab::AbIndex> index = ab::AbIndex::LoadFromFile(argv[0]);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const ab::AbIndex& idx = index.value();
  std::printf("level:        %s\n", ab::LevelName(idx.level()));
  std::printf("hash scheme:  %s\n", ab::HashSchemeName(idx.config().scheme));
  std::printf("rows:         %llu\n",
              static_cast<unsigned long long>(idx.num_rows()));
  std::printf("attributes:   %u\n", idx.mapping().num_attributes());
  std::printf("bitmap cols:  %u\n", idx.mapping().num_columns());
  std::printf("filters:      %zu\n", idx.num_filters());
  std::printf("total size:   %llu bytes\n",
              static_cast<unsigned long long>(idx.SizeInBytes()));
  for (size_t f = 0; f < std::min<size_t>(idx.num_filters(), 8); ++f) {
    const ab::ApproximateBitmap& filter = idx.filter(f);
    std::printf("  filter %zu: 2^%d bits, k=%d, %llu insertions, fill %.3f, "
                "expected FP %.5f\n",
                f, util::Log2Floor(filter.size_bits()), filter.k(),
                static_cast<unsigned long long>(filter.insertions()),
                filter.FillRatio(), filter.ExpectedFalsePositiveRate());
  }
  if (idx.num_filters() > 8) std::printf("  ... and %zu more\n",
                                         idx.num_filters() - 8);
  return 0;
}

bool ParseTriple(const char* s, uint32_t* a, uint32_t* lo, uint32_t* hi) {
  unsigned av, lov, hiv;
  if (std::sscanf(s, "%u:%u:%u", &av, &lov, &hiv) != 3) return false;
  *a = av;
  *lo = lov;
  *hi = hiv;
  return true;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 1) return Usage();
  util::StatusOr<ab::AbIndex> index = ab::AbIndex::LoadFromFile(argv[0]);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  bitmap::BitmapQuery query;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--attr" && i + 1 < argc) {
      uint32_t a, lo, hi;
      if (!ParseTriple(argv[++i], &a, &lo, &hi)) return Usage();
      query.ranges.push_back(bitmap::AttributeRange{a, lo, hi});
    } else if (arg == "--rows" && i + 1 < argc) {
      unsigned long long lo, hi;
      if (std::sscanf(argv[++i], "%llu:%llu", &lo, &hi) != 2) return Usage();
      query.rows = bitmap::RowRange(lo, hi);
    } else {
      return Usage();
    }
  }
  std::vector<bool> result = index.value().Evaluate(query);
  uint64_t matches = 0;
  for (bool b : result) matches += b;
  std::printf("candidates: %llu of %zu rows probed (no false negatives; "
              "prune against base data for exact answers)\n",
              static_cast<unsigned long long>(matches), result.size());
  // Print the first few matching row ids.
  uint64_t printed = 0;
  for (size_t i = 0; i < result.size() && printed < 20; ++i) {
    if (result[i]) {
      uint64_t row = query.rows.empty() ? i : query.rows[i];
      std::printf("  row %llu\n", static_cast<unsigned long long>(row));
      ++printed;
    }
  }
  if (matches > printed) {
    std::printf("  ... and %llu more\n",
                static_cast<unsigned long long>(matches - printed));
  }
  return 0;
}

int CmdDemo() {
  std::printf("Building a 200,000-row, 3-attribute table...\n");
  std::mt19937_64 rng(9);
  std::vector<double> price, quantity, rating;
  for (int i = 0; i < 200000; ++i) {
    price.push_back(std::uniform_real_distribution<double>(0, 100)(rng));
    quantity.push_back(static_cast<double>(rng() % 50));
    rating.push_back(std::normal_distribution<double>(3.0, 1.0)(rng));
  }
  util::StatusOr<engine::Table> table = engine::Table::FromColumns(
      "orders", {"price", "quantity", "rating"}, {price, quantity, rating});
  AB_CHECK(table.ok());

  engine::HybridEngine::Options options;
  options.binning.bins = 20;
  options.ab.alpha = 16;
  engine::HybridEngine engine =
      engine::HybridEngine::Build(std::move(table).value(), options);
  std::printf("index sizes: exact %llu bytes, AB %llu bytes\n",
              static_cast<unsigned long long>(engine.ExactSizeBytes()),
              static_cast<unsigned long long>(engine.AbSizeBytes()));
  std::printf("exact backends: %s\n",
              engine.exact_index().ChoiceSummary().c_str());
  std::printf("calibrated AB/WAH crossover: %.1f%% of rows\n",
              engine.MeasureCrossover() * 100);

  engine::EngineQuery q;
  q.predicates.push_back(engine::ValuePredicate{0, 25.0, 50.0});
  q.predicates.push_back(engine::ValuePredicate{2, 3.5, 5.0});

  engine::EngineResult whole = engine.Execute(q);
  std::printf("whole relation: %zu matches via %s\n", whole.row_ids.size(),
              whole.path.c_str());

  q.rows = bitmap::RowRange(150000, 150999);
  engine::EngineResult subset = engine.Execute(q);
  std::printf("1,000-row subset: %zu matches via %s\n",
              subset.row_ids.size(), subset.path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
  if (cmd == "build") return CmdBuild(argc - 2, argv + 2);
  if (cmd == "inspect") return CmdInspect(argc - 2, argv + 2);
  if (cmd == "query") return CmdQuery(argc - 2, argv + 2);
  if (cmd == "demo") return CmdDemo();
  return Usage();
}
